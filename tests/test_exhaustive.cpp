// Exhaustive small-image verification: every possible binary image of a
// given shape is labeled by every algorithm and compared with the oracle.
// 4x4 = 65536 images catches every local mask configuration, including all
// decision-tree branches and two-line-scan cases; the rectangular shapes
// catch row/column boundary handling.
//
// The fused-stats algorithms additionally run label_with_stats on every
// image, cross-checked against the post-pass compute_stats oracle — an
// exhaustive proof that the accumulate-during-scan hooks fire on every
// branch of the two-line mask (including forced multi-chunk PAREMSP and
// degenerate 1-pixel tiled grids, where all merging happens at seams).
#include <gtest/gtest.h>

#include <string>

#include "analysis/component_stats.hpp"
#include "analysis/equivalence.hpp"
#include "core/paremsp_all.hpp"
#include "fixtures.hpp"

namespace paremsp {
namespace {

BinaryImage image_from_bits(Coord rows, Coord cols, std::uint32_t bits) {
  BinaryImage img(rows, cols);
  for (Coord r = 0; r < rows; ++r) {
    for (Coord c = 0; c < cols; ++c) {
      img(r, c) = static_cast<std::uint8_t>(
          (bits >> (r * cols + c)) & 1U);
    }
  }
  return img;
}

/// rows, cols, stride: stride 1 enumerates the full space; a coprime
/// stride > 1 samples it evenly (used for the shapes whose mask coverage
/// the complete 4x4 sweep already provides).
struct Shape {
  Coord rows;
  Coord cols;
  std::uint32_t stride;
};

class ExhaustiveShape : public ::testing::TestWithParam<Shape> {};

TEST_P(ExhaustiveShape, AllAlgorithmsMatchOracleOnEveryImage) {
  const auto [rows, cols, stride] = GetParam();
  const int nbits = static_cast<int>(rows * cols);
  ASSERT_LE(nbits, 16) << "exhaustive space too large";

  const FloodFillLabeler oracle;
  std::vector<std::unique_ptr<Labeler>> labelers;
  for (const auto& info : algorithm_catalog()) {
    if (info.id == Algorithm::FloodFill) continue;
    labelers.push_back(make_labeler(info.id));
  }
  // Also force multi-chunk PAREMSP (default may pick 1 thread on 1-core).
  labelers.push_back(std::make_unique<ParemspLabeler>(ParemspConfig{2}));
  labelers.push_back(std::make_unique<ParemspLabeler>(ParemspConfig{3}));

  // Fused-stats configurations: exhaustively cross-checked against the
  // post-pass oracle. Degenerate tile grids route every adjacency through
  // seam merges, so the accumulator fold sees maximal fragmentation.
  std::vector<std::unique_ptr<Labeler>> fused;
  fused.push_back(std::make_unique<AremspLabeler>());
  fused.push_back(std::make_unique<ParemspLabeler>(ParemspConfig{2}));
  fused.push_back(std::make_unique<ParemspLabeler>(ParemspConfig{3}));
  fused.push_back(std::make_unique<TiledParemspLabeler>(
      TiledParemspConfig{.tile_rows = 1, .tile_cols = 1}));
  fused.push_back(std::make_unique<TiledParemspLabeler>(
      TiledParemspConfig{.tile_rows = 2, .tile_cols = 3}));
  // Run-based configurations: degenerate tile grids chop every run down
  // to tile width, so the boundary-run seam merges and the run renumber
  // see maximal fragmentation on every mask configuration.
  fused.push_back(std::make_unique<AremspRleLabeler>());
  fused.push_back(
      std::make_unique<ParemspRleLabeler>(RleConfig{.threads = 2}));
  fused.push_back(
      std::make_unique<ParemspRleLabeler>(RleConfig{.threads = 3}));
  fused.push_back(std::make_unique<TiledParemspRleLabeler>(
      RleConfig{.tile_rows = 1, .tile_cols = 1}));
  fused.push_back(std::make_unique<TiledParemspRleLabeler>(
      RleConfig{.tile_rows = 2, .tile_cols = 3}));

  const std::uint64_t total = 1ULL << nbits;
  for (std::uint64_t bits = 0; bits < total; bits += stride) {
    const BinaryImage img =
        image_from_bits(rows, cols, static_cast<std::uint32_t>(bits));
    const auto expected = oracle.label(img);
    for (const auto& labeler : labelers) {
      const auto got = labeler->label(img);
      if (got.num_components != expected.num_components ||
          !analysis::equivalent_labelings(got.labels, expected.labels)) {
        FAIL() << labeler->name() << " wrong on " << rows << "x" << cols
               << " bits=" << bits << "\n"
               << to_ascii(img);
      }
    }
    for (const auto& labeler : fused) {
      const LabelingWithStats ws = labeler->label_with_stats(img);
      if (ws.labeling.num_components != expected.num_components ||
          !analysis::equivalent_labelings(ws.labeling.labels,
                                          expected.labels)) {
        FAIL() << labeler->name() << " label_with_stats mislabeled "
               << rows << "x" << cols << " bits=" << bits << "\n"
               << to_ascii(img);
      }
      const auto oracle_stats = analysis::compute_stats(
          ws.labeling.labels, ws.labeling.num_components);
      // Cheap pre-check keeps the 65536-image hot loop free of failure
      // message construction; the shared helper reports on mismatch.
      if (ws.stats.components != oracle_stats.components) {
        testing::expect_stats_identical(
            ws.stats, oracle_stats,
            std::string(labeler->name()) + " " + std::to_string(rows) + "x" +
                std::to_string(cols) + " bits=" + std::to_string(bits) +
                "\n" + to_ascii(img));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExhaustiveShape,
    ::testing::Values(Shape{4, 4, 1},       // complete: richest mask space
                      Shape{3, 5, 5},       // sampled rectangular shapes
                      Shape{5, 3, 5},
                      Shape{2, 8, 9},
                      Shape{8, 2, 9},
                      Shape{1, 16, 11},     // single row/col: run handling
                      Shape{16, 1, 11}),
    [](const auto& pinfo) {
      return std::to_string(pinfo.param.rows) + "x" +
             std::to_string(pinfo.param.cols) +
             (pinfo.param.stride == 1 ? "_full" : "_sampled");
    });

}  // namespace
}  // namespace paremsp
