// Tests for src/common: PRNG determinism, statistics, table rendering,
// CLI parsing, environment knobs, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/cli.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace paremsp {
namespace {

// --- PRNG ---------------------------------------------------------------------

TEST(SplitMix64, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 (from the canonical C impl).
  SplitMix64 sm(1234567);
  const std::uint64_t first = sm();
  SplitMix64 sm2(1234567);
  EXPECT_EQ(sm2(), first);  // deterministic
  // Distinct seeds diverge immediately.
  SplitMix64 sm3(1234568);
  EXPECT_NE(sm3(), first);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a(), b());
  Xoshiro256 c(43);
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextBelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Xoshiro256, NextBelowEdgeCases) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextInCoversInclusiveRange) {
  Xoshiro256 rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.next_in(5, 5), 5);
  EXPECT_EQ(rng.next_in(7, 2), 7);  // degenerate range returns lo
}

TEST(Xoshiro256, NextBoolExtremes) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// --- Stats --------------------------------------------------------------------

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Summarize, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(summarize(odd).median, 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(even).median, 2.5);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Percentile, InterpolatesBetweenClosestRanks) {
  const std::vector<double> s{10.0, 40.0, 20.0, 30.0};  // unsorted input
  EXPECT_DOUBLE_EQ(percentile(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50.0), 25.0);  // == summarize().median
  EXPECT_DOUBLE_EQ(percentile(s, 25.0), 17.5);  // rank 0.75 -> 10 + 0.75*10
  // Out-of-range p clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(percentile(s, 120.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(s, -5.0), 10.0);
}

TEST(Percentile, AgreesWithMedianAndHandlesEdges) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 99.0), 7.0);
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(odd, 50.0), summarize(odd).median);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(even, 50.0), summarize(even).median);
  // percentile_sorted skips the sort but matches.
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 90.0), percentile(even, 90.0));
}

// --- TextTable ------------------------------------------------------------------

TEST(TextTable, AlignsColumnsAndRendersTitle) {
  TextTable t("My Table");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::num(1234.5678, 0), "1235");
}

TEST(TextTable, RaggedRowsPadToWidestRow) {
  TextTable t;
  t.add_row({"a"});
  t.add_row({"b", "c", "d"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a |   |   |"), std::string::npos);
}

// --- CLI ------------------------------------------------------------------------

TEST(CliParser, ParsesOptionsAndDefaults) {
  CliParser cli("test");
  cli.add_option("size", "128", "image size");
  cli.add_option("seed", "1", "rng seed");
  cli.add_flag("verbose", "chatty");
  const char* argv[] = {"prog", "--size", "256", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("size"), 256);
  EXPECT_EQ(cli.get_int("seed"), 1);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(CliParser, EqualsSyntax) {
  CliParser cli("test");
  cli.add_option("density", "0.5", "fg density");
  const char* argv[] = {"prog", "--density=0.25"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("density"), 0.25);
}

TEST(CliParser, UnknownOptionThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), PreconditionError);
}

TEST(CliParser, MissingValueThrows) {
  CliParser cli("test");
  cli.add_option("size", "1", "s");
  const char* argv[] = {"prog", "--size"};
  EXPECT_THROW(cli.parse(2, argv), PreconditionError);
}

TEST(CliParser, BadNumberThrows) {
  CliParser cli("test");
  cli.add_option("size", "1", "s");
  const char* argv[] = {"prog", "--size", "12abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("size"), PreconditionError);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli("test tool");
  cli.add_option("x", "0", "an option");
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test tool"), std::string::npos);
  EXPECT_NE(out.find("--x"), std::string::npos);
}

// --- Env ------------------------------------------------------------------------

TEST(Env, ReadsAndParses) {
  ::setenv("PAREMSP_TEST_STR", "hello", 1);
  ::setenv("PAREMSP_TEST_INT", "42", 1);
  ::setenv("PAREMSP_TEST_DBL", "2.5", 1);
  ::setenv("PAREMSP_TEST_BAD", "zzz", 1);
  EXPECT_EQ(env_string("PAREMSP_TEST_STR").value_or(""), "hello");
  EXPECT_EQ(env_int("PAREMSP_TEST_INT", -1), 42);
  EXPECT_DOUBLE_EQ(env_double("PAREMSP_TEST_DBL", -1.0), 2.5);
  EXPECT_EQ(env_int("PAREMSP_TEST_BAD", -1), -1);
  EXPECT_EQ(env_int("PAREMSP_TEST_UNSET_XYZ", 7), 7);
  EXPECT_FALSE(env_string("PAREMSP_TEST_UNSET_XYZ").has_value());

  // env_uint64 backs PAREMSP_TEST_SEED replay: decimal and 0x-hex, full
  // 64-bit range, fallback on garbage/unset.
  ::setenv("PAREMSP_TEST_U64", "18446744073709551615", 1);  // 2^64 - 1
  EXPECT_EQ(env_uint64("PAREMSP_TEST_U64", 0),
            std::numeric_limits<std::uint64_t>::max());
  ::setenv("PAREMSP_TEST_U64", "0x5eed", 1);
  EXPECT_EQ(env_uint64("PAREMSP_TEST_U64", 0), 0x5eedULL);
  ::setenv("PAREMSP_TEST_U64", "-5", 1);  // must not wrap to 2^64 - 5
  EXPECT_EQ(env_uint64("PAREMSP_TEST_U64", 3), 3u);
  ::setenv("PAREMSP_TEST_U64", "0123", 1);  // decimal, NOT octal 83
  EXPECT_EQ(env_uint64("PAREMSP_TEST_U64", 0), 123u);
  EXPECT_EQ(env_uint64("PAREMSP_TEST_BAD", 9), 9u);
  EXPECT_EQ(env_uint64("PAREMSP_TEST_UNSET_XYZ", 11), 11u);
}

TEST(Env, BannerMentionsThreads) {
  EXPECT_NE(environment_banner().find("threads"), std::string::npos);
  EXPECT_GE(hardware_threads(), 1);
}

// --- Contracts --------------------------------------------------------------------

TEST(Contracts, RequireThrowsPreconditionWithContext) {
  try {
    PAREMSP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("one is not two"), std::string::npos);
  }
}

TEST(Contracts, EnsureThrowsInvariant) {
  EXPECT_THROW(PAREMSP_ENSURE(false, "broken"), InvariantError);
}

}  // namespace
}  // namespace paremsp
