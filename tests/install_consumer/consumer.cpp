// Minimal installed-package consumer: exercises the public API boundary —
// the unified request/response surface over a zero-copy strided view of a
// caller-owned buffer, both directly and through the batch engine.
// Exits nonzero on any unexpected result.
#include <cstdint>
#include <iostream>
#include <vector>

#include <core/paremsp_all.hpp>

int main() {
  using namespace paremsp;

  // A caller-owned padded frame (pitch > cols): two plus-shaped blobs.
  constexpr Coord kRows = 8, kCols = 12;
  constexpr std::int64_t kPitch = 16;
  std::vector<std::uint8_t> frame(static_cast<std::size_t>(kRows) * kPitch,
                                  0);
  const auto set = [&](Coord r, Coord c) {
    frame[static_cast<std::size_t>(r) * kPitch + c] = 1;
  };
  for (Coord d = -1; d <= 1; ++d) {
    set(2 + d, 3);
    set(2, 3 + d);
    set(5 + d, 9);
    set(5, 9 + d);
  }

  LabelRequest request;
  request.input = ConstImageView(frame.data(), kRows, kCols, kPitch);
  request.outputs.stats = true;

  const auto labeler = make_labeler(Algorithm::Aremsp);
  const LabelResponse direct = labeler->run(request);
  if (direct.num_components != 2 || !direct.stats.has_value() ||
      direct.stats->total_foreground() != 10) {
    std::cerr << "direct run: unexpected result\n";
    return 1;
  }

  engine::LabelingEngine eng(engine::EngineConfig{.workers = 2});
  const LabelResponse via_engine = eng.submit(std::move(request)).get();
  if (via_engine.num_components != 2 ||
      via_engine.labels != direct.labels) {
    std::cerr << "engine submit: mismatch vs direct run\n";
    return 1;
  }

  std::cout << "paremsp consumer OK: " << direct.num_components
            << " components via installed package\n";
  return 0;
}
