// Tests for the chunked parallel multi-pass baseline (after Niknam et al.,
// paper reference [42]).
#include <gtest/gtest.h>

#include "analysis/equivalence.hpp"
#include "analysis/validation.hpp"
#include "baselines/flood_fill.hpp"
#include "baselines/parallel_suzuki.hpp"
#include "fixtures.hpp"
#include "image/generators.hpp"

namespace paremsp {
namespace {

class PSuzukiThreads : public ::testing::TestWithParam<int> {};

TEST_P(PSuzukiThreads, MatchesOracleOnFixtures) {
  const ParallelSuzukiLabeler labeler(Connectivity::Eight, GetParam());
  for (const auto& fx : testing::fixtures()) {
    SCOPED_TRACE(fx.name);
    const auto got = labeler.label(fx.image);
    EXPECT_EQ(got.num_components, fx.components8);
    const auto v = analysis::validate_labeling(fx.image, got.labels,
                                               got.num_components);
    EXPECT_TRUE(v.ok) << v.error;
  }
}

TEST_P(PSuzukiThreads, MatchesOracleOnGeneratedImages) {
  const ParallelSuzukiLabeler labeler(Connectivity::Eight, GetParam());
  const FloodFillLabeler oracle;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto image = gen::landcover_like(61, 53, seed);
    const auto expected = oracle.label(image);
    const auto got = labeler.label(image);
    EXPECT_EQ(got.num_components, expected.num_components);
    EXPECT_TRUE(analysis::equivalent_labelings(got.labels, expected.labels));
  }
  // Spiral: worst case for propagation (many global iterations).
  const auto spiral = gen::spiral(49, 49, 2, 3);
  const auto got = labeler.label(spiral);
  EXPECT_EQ(got.num_components, 1);
  EXPECT_GE(labeler.last_iteration_count(), 2);
}

TEST_P(PSuzukiThreads, FourConnectivity) {
  const ParallelSuzukiLabeler labeler(Connectivity::Four, GetParam());
  const FloodFillLabeler oracle(Connectivity::Four);
  for (const auto& fx : testing::fixtures()) {
    SCOPED_TRACE(fx.name);
    const auto got = labeler.label(fx.image);
    EXPECT_EQ(got.num_components, fx.components4);
    EXPECT_TRUE(analysis::equivalent_labelings(
        got.labels, oracle.label(fx.image).labels));
  }
}

TEST_P(PSuzukiThreads, LabelsAreRasterCanonical) {
  // Converged labels are flat-index minima, so consecutive renumbering in
  // increasing order equals flood fill's raster-first numbering exactly.
  const ParallelSuzukiLabeler labeler(Connectivity::Eight, GetParam());
  const auto image = gen::misc_like(47, 59, 9);
  const auto got = labeler.label(image);
  const auto oracle = FloodFillLabeler().label(image);
  EXPECT_EQ(got.labels, oracle.labels);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PSuzukiThreads,
                         ::testing::Values(1, 2, 4, 7),
                         [](const auto& pinfo) {
                           return "t" + std::to_string(pinfo.param);
                         });

TEST(PSuzuki, IterationCountGrowsWithSnakyness) {
  const ParallelSuzukiLabeler labeler(Connectivity::Eight, 2);
  (void)labeler.label(gen::uniform_noise(64, 64, 0.3, 1));
  const int noise_iters = labeler.last_iteration_count();
  (void)labeler.label(gen::spiral(64, 64, 1, 2));
  const int spiral_iters = labeler.last_iteration_count();
  // The spiral needs more global sweeps than speckle noise — the
  // multi-pass weakness PAREMSP's two-pass design avoids.
  EXPECT_GT(spiral_iters, noise_iters);
}

TEST(PSuzuki, DegenerateInputs) {
  const ParallelSuzukiLabeler labeler;
  EXPECT_EQ(labeler.label(BinaryImage()).num_components, 0);
  EXPECT_EQ(labeler.label(BinaryImage(3, 3, 0)).num_components, 0);
  EXPECT_EQ(labeler.label(BinaryImage(3, 3, 1)).num_components, 1);
  EXPECT_EQ(labeler.label(BinaryImage(1, 1, 1)).num_components, 1);
  EXPECT_THROW(ParallelSuzukiLabeler(Connectivity::Eight, -1),
               PreconditionError);
}

}  // namespace
}  // namespace paremsp
