// Tests for He's rtable/next/tail equivalence table (used by RUN and ARUN).
#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "unionfind/rem.hpp"
#include "unionfind/rtable.hpp"

namespace paremsp::uf {
namespace {

TEST(EquivalenceTable, NewLabelsAreConsecutiveSingletons) {
  EquivalenceTable t(10);
  EXPECT_EQ(t.new_label(), 1);
  EXPECT_EQ(t.new_label(), 2);
  EXPECT_EQ(t.new_label(), 3);
  EXPECT_EQ(t.label_count(), 3);
  for (Label l = 1; l <= 3; ++l) EXPECT_EQ(t.representative(l), l);
}

TEST(EquivalenceTable, ResolveKeepsSmallerRepresentative) {
  EquivalenceTable t(10);
  for (int i = 0; i < 5; ++i) t.new_label();
  EXPECT_EQ(t.resolve(4, 2), 2);
  EXPECT_EQ(t.representative(4), 2);
  EXPECT_EQ(t.representative(2), 2);
  EXPECT_EQ(t.resolve(2, 1), 1);
  EXPECT_EQ(t.representative(4), 1);  // transitively updated, O(1) lookup
  EXPECT_EQ(t.representative(2), 1);
}

TEST(EquivalenceTable, ResolveIsIdempotentAndSymmetric) {
  EquivalenceTable t(10);
  for (int i = 0; i < 4; ++i) t.new_label();
  EXPECT_EQ(t.resolve(1, 3), 1);
  EXPECT_EQ(t.resolve(3, 1), 1);
  EXPECT_EQ(t.resolve(1, 3), 1);
  EXPECT_EQ(t.representative(3), 1);
}

TEST(EquivalenceTable, MergingChainsKeepsAllMembersResolved) {
  EquivalenceTable t(64);
  for (int i = 0; i < 64; ++i) t.new_label();
  // Merge pairs, then pairs of pairs, etc. — every member must stay O(1)
  // resolved at every step.
  for (Label step = 1; step < 64; step *= 2) {
    for (Label l = 1; l + step <= 64; l += 2 * step) {
      t.resolve(l, l + step);
    }
    for (Label l = 1; l <= 64; ++l) {
      const Label rep = t.representative(l);
      EXPECT_EQ(t.representative(rep), rep) << "rep not idempotent at " << l;
    }
  }
  for (Label l = 1; l <= 64; ++l) EXPECT_EQ(t.representative(l), 1);
}

TEST(EquivalenceTable, MatchesRemOnRandomWorkloads) {
  Xoshiro256 rng(777);
  for (int round = 0; round < 6; ++round) {
    const Label n = static_cast<Label>(rng.next_in(2, 200));
    EquivalenceTable t(n);
    for (Label i = 0; i < n; ++i) t.new_label();
    // REM over 0..n-1 mirrors labels 1..n shifted by one.
    RemSplice rem(n);
    const int ops = static_cast<int>(rng.next_in(1, 3 * n));
    for (int i = 0; i < ops; ++i) {
      const Label x = static_cast<Label>(rng.next_in(1, n));
      const Label y = static_cast<Label>(rng.next_in(1, n));
      t.resolve(x, y);
      rem.unite(x - 1, y - 1);
    }
    for (Label l = 1; l <= n; ++l) {
      EXPECT_EQ(t.representative(l), rem.find(l - 1) + 1)
          << "label " << l << " round " << round;
    }
  }
}

TEST(EquivalenceTable, FlattenConsecutiveNumbersSetsInRepOrder) {
  EquivalenceTable t(8);
  for (int i = 0; i < 6; ++i) t.new_label();
  t.resolve(2, 5);  // {2,5} rep 2
  t.resolve(4, 6);  // {4,6} rep 4
  // Sets by min representative: {1}, {2,5}, {3}, {4,6}.
  EXPECT_EQ(t.flatten_consecutive(), 4);
  const auto f = t.final_labels();
  EXPECT_EQ(f[1], 1);
  EXPECT_EQ(f[2], 2);
  EXPECT_EQ(f[5], 2);
  EXPECT_EQ(f[3], 3);
  EXPECT_EQ(f[4], 4);
  EXPECT_EQ(f[6], 4);
}

TEST(EquivalenceTable, CapacityOverflowTrips) {
  EquivalenceTable t(2);
  t.new_label();
  t.new_label();
  EXPECT_THROW(t.new_label(), InvariantError);
}

TEST(EquivalenceTable, RejectsDegenerateCapacities) {
  // Degenerate sizes trip preconditions instead of wrapping the
  // allocation (negative) or letting new_label overflow Label (past
  // kMaxCapacity).
  EXPECT_THROW(EquivalenceTable(-1), PreconditionError);
  EquivalenceTable t(4);
  EXPECT_THROW(t.reset(-7), PreconditionError);
  EXPECT_THROW(t.reset(std::numeric_limits<Label>::max()),
               PreconditionError);
  // The failed resets left no usable state promise; a valid reset does.
  t.reset(1);
  EXPECT_EQ(t.new_label(), 1);
}

TEST(EquivalenceTable, RepresentativeRangeChecks) {
  EquivalenceTable t(5);
  t.new_label();
  EXPECT_THROW((void)t.representative(0), PreconditionError);
  EXPECT_THROW((void)t.representative(2), PreconditionError);
  EXPECT_THROW((void)t.resolve(1, 2), PreconditionError);
}

TEST(EquivalenceTable, ResetClearsState) {
  EquivalenceTable t(4);
  t.new_label();
  t.new_label();
  t.resolve(1, 2);
  t.reset(4);
  EXPECT_EQ(t.label_count(), 0);
  EXPECT_EQ(t.new_label(), 1);
  EXPECT_EQ(t.representative(1), 1);
}

}  // namespace
}  // namespace paremsp::uf
