// Observability layer: span recording (nesting, thread attribution,
// drop-on-full, session epochs), metric registries, exporter golden
// files, the union-count oracle, and bit-identity of traced runs.
//
// Every suite here is named Obs* so the CI ThreadSanitizer job can pick
// the whole file up with one filter term — the span tests deliberately
// record from many threads while a collector runs, which is exactly the
// concurrency TSan should vet.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "core/registry.hpp"
#include "core/request.hpp"
#include "engine/engine.hpp"
#include "engine/job_queue.hpp"
#include "image/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paremsp {
namespace {

using engine::EngineConfig;
using engine::JobQueue;
using engine::LabelingEngine;

/// Find the collected trace for a thread by its registered name; null if
/// absent. Rings persist for the process lifetime, so reports may carry
/// (empty) threads from earlier tests — lookups go by name, never index.
const obs::ThreadTrace* find_thread(const obs::TraceReport& report,
                                    const std::string& name) {
  for (const obs::ThreadTrace& t : report.threads) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

/// Count events named `name` across every thread of the report.
std::size_t count_events(const obs::TraceReport& report, const char* name) {
  std::size_t n = 0;
  for (const obs::ThreadTrace& t : report.threads) {
    for (const obs::TraceEvent& e : t.events) {
      if (std::string_view(e.name) == name) ++n;
    }
  }
  return n;
}

// --- Span recording --------------------------------------------------------

TEST(ObsTrace, DisabledByDefaultAndSpansAreInert) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::Span span("obs.test.unrecorded");
  }
  obs::TraceSession session;
  const obs::TraceReport report = session.stop();
  EXPECT_EQ(count_events(report, "obs.test.unrecorded"), 0u);
}

TEST(ObsTrace, NestedSpansRecordDepthAndBothLevels) {
  obs::set_thread_name("obs-main");
  obs::TraceSession session;
  ASSERT_TRUE(obs::tracing_enabled());
  {
    obs::Span outer("obs.test.outer");
    obs::Span inner("obs.test.inner", "detail");
  }
  const obs::TraceReport report = session.stop();
  EXPECT_FALSE(obs::tracing_enabled());
  const obs::ThreadTrace* mine = find_thread(report, "obs-main");
  ASSERT_NE(mine, nullptr);

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const obs::TraceEvent& e : mine->events) {
    if (std::string_view(e.name) == "obs.test.outer") outer = &e;
    if (std::string_view(e.name) == "obs.test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_STREQ(inner->category, "detail");
  // The inner span nests inside the outer interval.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_GE(outer->dur_ns, 0);
}

TEST(ObsTrace, EventsAttributeToTheRecordingThread) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 8;
  obs::TraceSession session;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      obs::set_thread_name("obs-attr-" + std::to_string(i));
      for (int s = 0; s < kSpansPerThread; ++s) {
        obs::Span span("obs.test.attributed");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::TraceReport report = session.stop();
  std::set<std::uint64_t> seen_indices;
  for (int i = 0; i < kThreads; ++i) {
    const obs::ThreadTrace* t =
        find_thread(report, "obs-attr-" + std::to_string(i));
    ASSERT_NE(t, nullptr) << "thread " << i;
    EXPECT_EQ(t->events.size(), static_cast<std::size_t>(kSpansPerThread))
        << "thread " << i;
    EXPECT_EQ(t->dropped, 0u);
    seen_indices.insert(t->thread_index);
  }
  // Distinct threads occupy distinct tracks (distinct trace tids).
  EXPECT_EQ(seen_indices.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsTrace, FullRingDropsInsteadOfOverwriting) {
  constexpr std::size_t kCapacity = 4;
  constexpr int kRecorded = 11;
  obs::TraceSession session(kCapacity);
  // A fresh thread gets a fresh ring sized by the active session.
  std::thread recorder([] {
    obs::set_thread_name("obs-dropper");
    for (int i = 0; i < kRecorded; ++i) {
      obs::Span span("obs.test.drop");
    }
  });
  recorder.join();
  const obs::TraceReport report = session.stop();
  const obs::ThreadTrace* t = find_thread(report, "obs-dropper");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->events.size(), kCapacity);
  EXPECT_EQ(t->dropped, static_cast<std::uint64_t>(kRecorded - kCapacity));
  EXPECT_EQ(report.total_dropped(), t->dropped);
}

TEST(ObsTrace, BackToBackSessionsDoNotBleed) {
  obs::set_thread_name("obs-main");
  {
    obs::TraceSession first;
    obs::Span span("obs.test.first_session");
    // Destructor records before stop().
  }
  obs::TraceSession second;
  {
    obs::Span span("obs.test.second_session");
  }
  const obs::TraceReport report = second.stop();
  EXPECT_EQ(count_events(report, "obs.test.first_session"), 0u);
  EXPECT_EQ(count_events(report, "obs.test.second_session"), 1u);
}

TEST(ObsTrace, SpanOpenAcrossSessionStartIsNotRecorded) {
  // Events never straddle the session boundary: a span constructed while
  // tracing was off stays inert even if a session starts before it ends.
  auto span = std::make_unique<obs::Span>("obs.test.straddler");
  obs::TraceSession session;
  span.reset();
  const obs::TraceReport report = session.stop();
  EXPECT_EQ(count_events(report, "obs.test.straddler"), 0u);
}

TEST(ObsTrace, OnlyOneSessionMayBeAlive) {
  obs::TraceSession session;
  EXPECT_THROW(obs::TraceSession another, PreconditionError);
  (void)session.stop();
  obs::TraceSession after_stop;  // the slot frees on stop
  (void)after_stop.stop();
}

TEST(ObsTrace, StopIsIdempotent) {
  obs::TraceSession session;
  {
    obs::Span span("obs.test.once");
  }
  const obs::TraceReport first = session.stop();
  EXPECT_EQ(count_events(first, "obs.test.once"), 1u);
  const obs::TraceReport second = session.stop();
  EXPECT_EQ(second.total_events(), 0u);
}

TEST(ObsTrace, EmitSpanRecordsCallerMeasuredInterval) {
  obs::set_thread_name("obs-main");
  obs::TraceSession session;
  const std::int64_t start = obs::trace_now_ns() - 5'000'000;  // backdated
  obs::emit_span("obs.test.backdated", "engine", start, 2'000'000);
  const obs::TraceReport report = session.stop();
  const obs::ThreadTrace* mine = find_thread(report, "obs-main");
  ASSERT_NE(mine, nullptr);
  const obs::TraceEvent* e = nullptr;
  for (const obs::TraceEvent& ev : mine->events) {
    if (std::string_view(ev.name) == "obs.test.backdated") e = &ev;
  }
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->dur_ns, 2'000'000);
  EXPECT_STREQ(e->category, "engine");
}

TEST(ObsTrace, ConcurrentRecordingIsRaceFreeUnderCollector) {
  // Hammer the rings from several threads while the main thread collects
  // mid-flight (forced-mode collect()) — the release/acquire count
  // protocol is what TSan checks here.
  constexpr int kWriters = 3;
  constexpr int kSpansPerWriter = 2000;
  obs::TraceSession session;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&done, i] {
      obs::set_thread_name("obs-hammer-" + std::to_string(i));
      for (int s = 0; s < kSpansPerWriter; ++s) {
        obs::Span span("obs.test.hammer");
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Collect mid-flight until every writer finishes: the collector reads
  // rings the writers are actively appending to.
  while (done.load(std::memory_order_relaxed) < kWriters) {
    const obs::TraceReport mid = obs::collect();
    (void)mid.total_events();
  }
  for (std::thread& t : writers) t.join();
  const obs::TraceReport report = session.stop();
  EXPECT_EQ(count_events(report, "obs.test.hammer") + report.total_dropped(),
            static_cast<std::size_t>(kWriters * kSpansPerWriter));
}

// --- Metrics registries ----------------------------------------------------

TEST(ObsMetrics, CountersInternByNameAndAccumulate) {
  obs::reset_metrics_for_test();
  obs::Counter& a = obs::counter("obs_test_events_total");
  obs::Counter& b = obs::counter("obs_test_events_total");
  EXPECT_EQ(&a, &b);  // same name, same counter
  a.add(40);
  b.increment();
  b.increment();
  EXPECT_EQ(a.value(), 42u);

  obs::Gauge& g = obs::gauge("obs_test_depth");
  g.set(3.0);
  g.set_max(7.5);
  g.set_max(2.0);  // lower than current: ignored
  EXPECT_DOUBLE_EQ(g.value(), 7.5);

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  bool found_counter = false;
  bool found_gauge = false;
  for (const auto& c : snap.counters) {
    if (c.name == "obs_test_events_total") {
      found_counter = true;
      EXPECT_EQ(c.value, 42u);
    }
  }
  for (const auto& gs : snap.gauges) {
    if (gs.name == "obs_test_depth") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(gs.value, 7.5);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  // Snapshot order is sorted by name — stable for goldens and diffs.
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LE(snap.counters[i - 1].name, snap.counters[i].name);
  }

  obs::reset_metrics_for_test();
  EXPECT_EQ(obs::counter("obs_test_events_total").value(), 0u);
  EXPECT_DOUBLE_EQ(obs::gauge("obs_test_depth").value(), 0.0);
}

// --- Exporters (golden files) ----------------------------------------------

TEST(ObsExport, ChromeTraceGolden) {
  obs::TraceReport report;
  report.session_duration_ns = 5'000'000;
  obs::ThreadTrace worker;
  worker.thread_index = 0;
  worker.name = "worker-0";
  worker.dropped = 2;
  worker.events.push_back({"scan", "phase", 1'500, 2'000'500, 0});
  report.threads.push_back(std::move(worker));

  std::ostringstream out;
  obs::write_chrome_trace(out, report, "paremsp");
  const std::string golden =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"paremsp\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"worker-0\"}},\n"
      "{\"name\":\"scan\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":1.500,\"dur\":2000.500}\n"
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
      "\"session_duration_ms\":5,\"dropped_events\":2}}\n";
  EXPECT_EQ(out.str(), golden);
}

TEST(ObsExport, PrometheusTextGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"jobs_total", 42});
  snap.gauges.push_back({"queue_depth", 3.5});
  std::ostringstream out;
  obs::write_prometheus_text(out, snap);
  EXPECT_EQ(out.str(),
            "# TYPE jobs_total counter\n"
            "jobs_total 42\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 3.5\n");
}

TEST(ObsExport, MetricsJsonGolden) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"jobs_total", 42});
  snap.counters.push_back({"unions_total", 7});
  snap.gauges.push_back({"queue_depth", 3.5});
  std::ostringstream out;
  obs::write_metrics_json(out, snap);
  EXPECT_EQ(out.str(),
            "{\"counters\":{\"jobs_total\":42,\"unions_total\":7},"
            "\"gauges\":{\"queue_depth\":3.5}}\n");
}

TEST(ObsExport, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

// --- Counter oracle --------------------------------------------------------

/// scan_unions + merge_unions == provisional_labels - num_components: each
/// successful union joins two distinct provisional-label trees, and a
/// forest of L nodes with C trees has exactly L - C edges.
void expect_union_oracle(const PhaseCounters& c, Label num_components,
                         const std::string& context) {
  ASSERT_GT(c.provisional_labels, 0) << context;
  EXPECT_EQ(c.total_unions(),
            static_cast<std::uint64_t>(c.provisional_labels) -
                static_cast<std::uint64_t>(num_components))
      << context;
}

TEST(ObsCounters, UnionOracleHoldsOnInstrumentedAlgorithms) {
  const BinaryImage image = gen::landcover_like(96, 128, 20260808);
  LabelRequest request;
  request.input = image;

  // Every algorithm that reports provisional labels must satisfy the
  // forest-edge identity; these six are instrumented and must report.
  const std::set<std::string> instrumented = {
      "aremsp",     "paremsp",     "paremsp2d",
      "aremsp_rle", "paremsp_rle", "paremsp2d_rle"};
  std::set<std::string> reported;
  for (const AlgorithmInfo& info : algorithm_catalog()) {
    const auto labeler = make_labeler(info.id);
    const LabelResponse response = labeler->run(request);
    const PhaseCounters& c = response.timings.counters;
    if (c.provisional_labels == 0) continue;
    reported.insert(std::string(info.name));
    expect_union_oracle(c, response.num_components, std::string(info.name));
    if (info.name.find("rle") != std::string_view::npos) {
      EXPECT_GT(c.runs_extracted, 0u) << info.name;
    }
    EXPECT_GT(c.tiles, 0u) << info.name;
  }
  for (const std::string& name : instrumented) {
    EXPECT_TRUE(reported.count(name)) << name << " lost its counters";
  }
}

TEST(ObsCounters, UnionOracleHoldsAcrossMergeBackends) {
  const BinaryImage image = gen::texture_like(80, 112, 99);
  LabelRequest request;
  request.input = image;
  for (const Algorithm algorithm :
       {Algorithm::Paremsp, Algorithm::ParemspTiled, Algorithm::ParemspRle,
        Algorithm::ParemspTiledRle}) {
    for (const MergeBackend backend :
         {MergeBackend::LockedRem, MergeBackend::CasRem,
          MergeBackend::Sequential}) {
      // CasRem additionally sweeps its find × splice policy pairs; the
      // oracle must hold for every combination (each is a complete REM
      // merger, only the compaction traffic differs).
      std::vector<std::pair<uf::CasFind, uf::CasSplice>> policies = {
          {uf::CasFind::Naive, uf::CasSplice::Atomic}};
      if (backend == MergeBackend::CasRem) {
        for (const uf::CasFind find :
             {uf::CasFind::Naive, uf::CasFind::Split, uf::CasFind::Halve}) {
          for (const uf::CasSplice splice :
               {uf::CasSplice::Atomic, uf::CasSplice::Simple}) {
            if (find == uf::CasFind::Naive && splice == uf::CasSplice::Atomic)
              continue;  // already present as the default entry
            policies.emplace_back(find, splice);
          }
        }
      }
      for (const auto& [find, splice] : policies) {
        LabelerOptions options;
        options.merge_backend = backend;
        // Honor the environment's thread cap instead of forcing 4: the CI
        // TSan job pins OMP_NUM_THREADS=1 because libgomp's barriers are
        // not TSan-instrumented (std::thread suites carry the concurrency
        // coverage there); everywhere else this still runs 4-way.
        options.threads = env_int("OMP_NUM_THREADS", 4);
        options.cas_find = find;
        options.cas_splice = splice;
        const auto labeler = make_labeler(algorithm, options);
        const LabelResponse response = labeler->run(request);
        expect_union_oracle(response.timings.counters, response.num_components,
                            std::string(algorithm_info(algorithm).name) + "/" +
                                merge_backend_label(backend, find, splice));
      }
    }
  }
}

TEST(ObsCounters, ShardedRunsFillCountersAndQueueWait) {
  const BinaryImage image = gen::aerial_like(160, 200, 4242);
  LabelingEngine eng({.workers = 3});
  for (const ShardScan scan : {ShardScan::Pixel, ShardScan::Runs}) {
    for (const MergeBackend backend :
         {MergeBackend::LockedRem, MergeBackend::CasRem,
          MergeBackend::Sequential}) {
      LabelRequest request;
      request.input = image;
      request.shard = ShardOptions{.tile_rows = 64,
                                   .tile_cols = 64,
                                   .scan = scan,
                                   .merge_backend = backend};
      LabelResponse response = eng.submit(std::move(request)).get();
      const std::string context =
          std::string(to_string(scan)) + "/" + to_string(backend);
      expect_union_oracle(response.timings.counters, response.num_components,
                          context);
      EXPECT_GT(response.timings.counters.tiles, 1u) << context;
      EXPECT_GE(response.timings.queue_wait_ms, 0.0) << context;
      if (scan == ShardScan::Runs) {
        EXPECT_GT(response.timings.counters.runs_extracted, 0u) << context;
      }
      EXPECT_GT(response.timings.counters.merge_pairs, 0u) << context;
    }
  }
}

TEST(ObsCounters, PhaseSumStaysWithinTotal) {
  // The four phase timers cover disjoint intervals of the run, so their
  // sum can never meaningfully exceed the end-to-end wall time. (The
  // strict 5% reconcile lives in examples/labeling_service.cpp where a
  // single large request makes the timings statistically stable.)
  const BinaryImage image = gen::landcover_like(128, 128, 7);
  LabelRequest request;
  request.input = image;
  const auto labeler = make_labeler(Algorithm::ParemspTiledRle);
  const LabelResponse response = labeler->run(request);
  EXPECT_GT(response.timings.phase_sum_ms(), 0.0);
  EXPECT_LE(response.timings.phase_sum_ms(),
            response.timings.total_ms * 1.05 + 0.5);
}

// --- Tracing must never change results -------------------------------------

TEST(ObsTrace, TracedRunsAreBitIdenticalOnEveryAlgorithm) {
  const BinaryImage image = gen::landcover_like(72, 96, 31337);
  LabelRequest request;
  request.input = image;
  for (const AlgorithmInfo& info : algorithm_catalog()) {
    const auto labeler = make_labeler(info.id);
    const LabelResponse baseline = labeler->run(request);
    obs::TraceSession session;
    const LabelResponse traced = labeler->run(request);
    const obs::TraceReport report = session.stop();
    EXPECT_EQ(traced.num_components, baseline.num_components) << info.name;
    EXPECT_EQ(traced.labels, baseline.labels) << info.name;
    (void)report;
  }
}

TEST(ObsTrace, TracedShardedRleRunShowsAllFourPhases) {
  const BinaryImage image = gen::landcover_like(128, 192, 555);
  LabelingEngine eng({.workers = 2});
  LabelRequest request;
  request.input = image;
  request.shard =
      ShardOptions{.tile_rows = 48, .tile_cols = 64, .scan = ShardScan::Runs};

  obs::TraceSession session;
  LabelResponse response = eng.submit(std::move(request)).get();
  const obs::TraceReport report = session.stop();
  EXPECT_GT(response.num_components, 0);
  EXPECT_GT(count_events(report, "shard.scan"), 0u);
  EXPECT_GT(count_events(report, "shard.merge"), 0u);
  EXPECT_GT(count_events(report, "shard.flatten"), 0u);
  EXPECT_GT(count_events(report, "shard.rewrite"), 0u);
  // The engine names each worker's track for the exporter.
  bool worker_track = false;
  for (const obs::ThreadTrace& t : report.threads) {
    if (t.name.rfind("worker-", 0) == 0 && !t.events.empty()) {
      worker_track = true;
    }
  }
  EXPECT_TRUE(worker_track);
}

// --- Engine stats: queue backlog + failed-latency split --------------------

TEST(ObsQueue, HighWaterTracksDeepestBacklog) {
  JobQueue<int> q(8);
  EXPECT_EQ(q.high_water(), 0u);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  ASSERT_TRUE(q.push(3));
  EXPECT_EQ(q.high_water(), 3u);
  (void)q.pop();
  (void)q.pop();
  (void)q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 3u);  // the mark never recedes
  ASSERT_TRUE(q.push_unbounded(4));
  EXPECT_EQ(q.high_water(), 3u);  // depth 1 < mark
}

TEST(ObsQueue, EngineSnapshotExposesQueueFields) {
  LabelingEngine eng({.workers = 2, .queue_capacity = 64});
  std::vector<BinaryImage> images;
  std::vector<std::future<LabelingResult>> futures;
  for (int i = 0; i < 8; ++i) {
    images.push_back(gen::texture_like(48, 48, 100 + i));
  }
  for (const BinaryImage& image : images) {
    futures.push_back(eng.submit_view(image));
  }
  for (auto& f : futures) (void)f.get();
  const engine::EngineStatsSnapshot s = eng.stats();
  EXPECT_EQ(s.queue_capacity, 64u);
  EXPECT_EQ(s.queue_depth, 0u);  // drained
  EXPECT_LE(s.queue_high_water, 64u);
  EXPECT_EQ(s.jobs_completed, 8u);
}

TEST(ObsQueue, FailedJobsLatencyIsWindowedSeparately) {
  // The engine's labeler is 8-connectivity-only AREMSP; a per-request
  // 4-connectivity override is rejected on the worker, so the job fails
  // and must land in the FAILED latency window, leaving the ok tail
  // untouched.
  const BinaryImage image = gen::landcover_like(48, 64, 11);
  LabelingEngine eng({.workers = 1, .algorithm = Algorithm::Aremsp});

  LabelRequest ok;
  ok.input = image;
  (void)eng.submit(std::move(ok)).get();

  LabelRequest bad;
  bad.input = image;
  bad.connectivity = Connectivity::Four;
  auto failed = eng.submit(std::move(bad));
  EXPECT_THROW((void)failed.get(), PreconditionError);

  const engine::EngineStatsSnapshot s = eng.stats();
  EXPECT_EQ(s.jobs_completed, 2u);
  EXPECT_EQ(s.jobs_failed, 1u);
  EXPECT_GT(s.latency_mean_ms, 0.0);
  EXPECT_GT(s.latency_failed_mean_ms, 0.0);
  EXPECT_GT(s.latency_failed_max_ms, 0.0);
  EXPECT_GE(s.latency_failed_p99_ms, 0.0);
}

TEST(ObsMetrics, EnginePublishesSnapshotGauges) {
  obs::reset_metrics_for_test();
  const BinaryImage image = gen::landcover_like(40, 56, 3);
  LabelingEngine eng({.workers = 2});
  (void)eng.submit_view(image).get();
  (void)eng.submit_view(image).get();
  eng.publish_metrics();
  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  double completed = -1.0;
  double workers = -1.0;
  for (const auto& g : snap.gauges) {
    if (g.name == "engine_jobs_completed") completed = g.value;
    if (g.name == "engine_workers") workers = g.value;
  }
  EXPECT_DOUBLE_EQ(completed, 2.0);
  EXPECT_DOUBLE_EQ(workers, 2.0);
  // The per-job worker counters ride along.
  std::uint64_t jobs_total = 0;
  for (const auto& c : snap.counters) {
    if (c.name == "engine_jobs_total") jobs_total = c.value;
  }
  EXPECT_EQ(jobs_total, 2u);
}

}  // namespace
}  // namespace paremsp
