// Tests for the component post-processing utilities (analysis/filtering).
#include <gtest/gtest.h>

#include "analysis/filtering.hpp"
#include "baselines/flood_fill.hpp"
#include "common/contracts.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"

namespace paremsp::analysis {
namespace {

TEST(ExtractComponent, PullsOneLabelMask) {
  const BinaryImage img = binary_from_ascii(
      R"(
##..#
##..#
.....)");
  const auto res = FloodFillLabeler().label(img);
  ASSERT_EQ(res.num_components, 2);
  const BinaryImage first = extract_component(res.labels, 1);
  EXPECT_EQ(to_ascii(first),
            "##...\n"
            "##...\n"
            ".....\n");
  const BinaryImage second = extract_component(res.labels, 2);
  EXPECT_EQ(to_ascii(second),
            "....#\n"
            "....#\n"
            ".....\n");
  EXPECT_THROW((void)extract_component(res.labels, 0), PreconditionError);
}

TEST(RemoveSmallComponents, DropsBelowThreshold) {
  const BinaryImage img = binary_from_ascii(
      R"(
###..#
###...
.....#)");
  Label dropped = 0;
  const BinaryImage cleaned =
      remove_small_components(img, 3, Connectivity::Eight, &dropped);
  EXPECT_EQ(dropped, 2);  // the two isolated pixels
  EXPECT_EQ(to_ascii(cleaned),
            "###...\n"
            "###...\n"
            "......\n");
}

TEST(RemoveSmallComponents, ThresholdEdgeCases) {
  const BinaryImage img = gen::uniform_noise(32, 32, 0.3, 5);
  // min_area 0/1 keeps everything.
  EXPECT_EQ(remove_small_components(img, 0), img);
  EXPECT_EQ(remove_small_components(img, 1), img);
  // A huge threshold clears the image.
  const BinaryImage none = remove_small_components(img, 100000);
  for (const auto px : none.pixels()) EXPECT_EQ(px, 0);
  EXPECT_THROW((void)remove_small_components(img, -1), PreconditionError);
}

TEST(RemoveSmallComponents, RespectsConnectivity) {
  // Two diagonal pixels: one component under 8-conn (area 2), two under
  // 4-conn (area 1 each).
  const BinaryImage img = binary_from_ascii(
      R"(
#.
.#)");
  EXPECT_EQ(remove_small_components(img, 2, Connectivity::Eight), img);
  const BinaryImage four =
      remove_small_components(img, 2, Connectivity::Four);
  for (const auto px : four.pixels()) EXPECT_EQ(px, 0);
}

TEST(KeepLargestComponent, PicksTheBiggest) {
  const BinaryImage img = binary_from_ascii(
      R"(
##...#
##...#
.....#
#....#
.....#)");
  const BinaryImage largest = keep_largest_component(img);
  EXPECT_EQ(to_ascii(largest),
            ".....#\n"
            ".....#\n"
            ".....#\n"
            ".....#\n"
            ".....#\n");
}

TEST(KeepLargestComponent, TieBreaksTowardSmallerLabel) {
  // Two components of area 2: raster-first one wins.
  const BinaryImage img = binary_from_ascii("##.##");
  const BinaryImage largest = keep_largest_component(img);
  EXPECT_EQ(to_ascii(largest), "##...\n");
}

TEST(KeepLargestComponent, EmptyImageStaysEmpty) {
  const BinaryImage img(5, 5, 0);
  const BinaryImage out = keep_largest_component(img);
  for (const auto px : out.pixels()) EXPECT_EQ(px, 0);
}

TEST(FillHoles, FillsEnclosedBackground) {
  const BinaryImage ring = binary_from_ascii(
      R"(
#####
#...#
#.#.#
#...#
#####)");
  const BinaryImage filled = fill_holes(ring);
  for (const auto px : filled.pixels()) EXPECT_EQ(px, 1);
}

TEST(FillHoles, LeavesOpenRegionsAlone) {
  const BinaryImage cup = binary_from_ascii(
      R"(
#...#
#...#
#####)");
  EXPECT_EQ(fill_holes(cup), cup);  // open at the top: not a hole
}

TEST(FillHoles, DiagonalGapsAreNotLeaks) {
  // 8-connected foreground ring with a diagonal "gap" that background
  // cannot pass through under 4-connectivity: still a hole.
  const BinaryImage ring = binary_from_ascii(
      R"(
.###.
#...#
#.#.#
#...#
.###.)",
      '#');
  const BinaryImage filled = fill_holes(ring);
  EXPECT_EQ(filled(2, 2), 1);
  EXPECT_EQ(filled(1, 2), 1);
  // The diagonal corner background pixels connect to the outside.
  EXPECT_EQ(filled(0, 0), 0);
  EXPECT_EQ(filled(4, 4), 0);
}

TEST(FillHoles, NestedStructures) {
  const BinaryImage nested = binary_from_ascii(
      R"(
#########
#.......#
#.#####.#
#.#...#.#
#.#####.#
#.......#
#########)");
  const BinaryImage filled = fill_holes(nested);
  for (const auto px : filled.pixels()) EXPECT_EQ(px, 1);
}

}  // namespace
}  // namespace paremsp::analysis
