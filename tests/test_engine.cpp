// Batch labeling engine: queue semantics, scratch reuse, bit-identical
// results under batching and concurrent submission, clean shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/validation.hpp"
#include "common/contracts.hpp"
#include "core/label_scratch.hpp"
#include "core/paremsp_all.hpp"
#include "engine/engine.hpp"
#include "engine/job_queue.hpp"
#include "fixtures.hpp"
#include "image/generators.hpp"

namespace paremsp {
namespace {

using engine::EngineConfig;
using engine::JobQueue;
using engine::LabelingEngine;

/// A deterministic mixed-content image for (stream, index) coordinates.
BinaryImage stream_image(int stream, int index, Coord rows = 64,
                         Coord cols = 96) {
  const std::uint64_t seed =
      1000003ULL * static_cast<std::uint64_t>(stream) +
      static_cast<std::uint64_t>(index);
  switch (index % 3) {
    case 0: return gen::landcover_like(rows, cols, seed);
    case 1: return gen::texture_like(rows, cols, seed);
    default: return gen::aerial_like(rows, cols, seed);
  }
}

void expect_same_result(const LabelingResult& got, const LabelingResult& want,
                        const std::string& context) {
  EXPECT_EQ(got.num_components, want.num_components) << context;
  EXPECT_EQ(got.labels, want.labels) << context;
}

// --- JobQueue --------------------------------------------------------------

TEST(JobQueue, FifoOrder) {
  JobQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  ASSERT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(JobQueue, CloseDrainsThenStops) {
  JobQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // closed: rejected
  EXPECT_EQ(q.pop(), 1);    // but queued items still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays drained
}

TEST(JobQueue, PushBlocksUntilPopMakesRoom) {
  JobQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(q.push(std::move(i)));
      pushed.fetch_add(1);
    }
  });
  // The producer cannot complete until we drain; every item arrives in
  // order despite the capacity-1 bottleneck.
  for (int want = 0; want <= 3; ++want) {
    EXPECT_EQ(q.pop(), want);
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, RejectsZeroCapacity) {
  EXPECT_THROW(JobQueue<int>(0), PreconditionError);
}

// --- LabelScratch reuse ----------------------------------------------------

TEST(LabelScratch, GrowsOnceAcrossDifferentlySizedImages) {
  const AremspLabeler labeler;
  LabelScratch scratch;

  const BinaryImage small = gen::landcover_like(48, 48, 7);
  const BinaryImage big = gen::landcover_like(96, 128, 8);

  // Run one image through the warm-scratch path, recycling the output
  // plane the way the engine's clients do.
  const auto run = [&](const BinaryImage& image) {
    LabelingResult r = labeler.label_into(image, scratch);
    expect_same_result(r, labeler.label(image), "scratch run");
    scratch.recycle_plane(std::move(r.labels));
  };

  run(small);
  const std::uint64_t after_small = scratch.grow_count();
  EXPECT_GT(after_small, 0u);

  // Same size again: fully served from the warm workspace.
  run(small);
  EXPECT_EQ(scratch.grow_count(), after_small);

  // Bigger image: buffers grow to the new high-water mark...
  run(big);
  const std::uint64_t after_big = scratch.grow_count();
  EXPECT_GT(after_big, after_small);

  // ...after which neither the big nor the small size allocates again.
  run(big);
  run(small);
  run(big);
  EXPECT_EQ(scratch.grow_count(), after_big);
  EXPECT_GT(scratch.reserved_bytes(), 0u);
}

TEST(LabelScratch, RecycledPlanesAreReusedAndZeroed) {
  const FloodFillLabeler labeler;  // relies on a zeroed plane internally
  LabelScratch scratch;
  const BinaryImage image = gen::texture_like(40, 56, 3);
  const LabelingResult want = labeler.label(image);

  LabelingResult r = labeler.label_into(image, scratch);
  expect_same_result(r, want, "before recycling");
  const std::uint64_t reuses = scratch.plane_reuse_count();
  scratch.recycle_plane(std::move(r.labels));

  // The recycled plane is full of stale labels; acquire must hand it back
  // zeroed or flood fill would see every pixel as already visited.
  const LabelingResult again = labeler.label_into(image, scratch);
  expect_same_result(again, want, "after recycling");
  EXPECT_GT(scratch.plane_reuse_count(), reuses);
}

TEST(LabelScratch, LabelIntoMatchesLabelForEveryAlgorithm) {
  const BinaryImage a = gen::misc_like(33, 47, 21);
  const BinaryImage b = gen::landcover_like(50, 41, 22);
  for (const AlgorithmInfo& info : algorithm_catalog()) {
    SCOPED_TRACE(std::string(info.name));
    const auto labeler = make_labeler(info.id);
    LabelScratch scratch;
    // Two calls on one scratch: the second runs on warm buffers.
    expect_same_result(labeler->label_into(a, scratch), labeler->label(a),
                       "image a");
    expect_same_result(labeler->label_into(b, scratch), labeler->label(b),
                       "image b");

    // The catalog's scratch_reuse flag must reflect reality: algorithms
    // carrying it run allocation-free once the scratch is warm.
    if (info.scratch_reuse) {
      LabelingResult warmup = labeler->label_into(b, scratch);
      scratch.recycle_plane(std::move(warmup.labels));
      const std::uint64_t grows = scratch.grow_count();
      LabelingResult warm = labeler->label_into(b, scratch);
      EXPECT_EQ(scratch.grow_count(), grows)
          << "scratch_reuse algorithm allocated on a warm scratch";
      scratch.recycle_plane(std::move(warm.labels));
    }
  }
}

// --- LabelingEngine --------------------------------------------------------

TEST(LabelingEngine, BatchMatchesDirectCallsBitForBit) {
  for (const Algorithm algorithm :
       {Algorithm::Aremsp, Algorithm::Paremsp, Algorithm::FloodFill}) {
    SCOPED_TRACE(std::string(algorithm_info(algorithm).name));
    const auto direct = make_labeler(algorithm);

    std::vector<BinaryImage> images;
    for (int i = 0; i < 12; ++i) {
      images.push_back(stream_image(0, i, 32 + 8 * (i % 4), 48 + 16 * (i % 3)));
    }
    images.push_back(BinaryImage());  // empty image rides along

    LabelingEngine eng({.workers = 3, .algorithm = algorithm});
    // submit_batch takes the vector by value; passing the lvalue copies,
    // keeping `images` usable for the reference labelings below.
    auto futures = eng.submit_batch(images);
    ASSERT_EQ(futures.size(), images.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const LabelingResult got = futures[i].get();
      const LabelingResult want = direct->label(images[i]);
      expect_same_result(got, want, "image " + std::to_string(i));
      const auto validation = analysis::validate_labeling(
          images[i], got.labels, got.num_components);
      EXPECT_TRUE(validation.ok) << validation.error;
    }
  }
}

TEST(LabelingEngine, SubmitWithStatsMatchesDirectFusedAndFallbackPaths) {
  // Aremsp/Paremsp fuse the stats into the scan; FloodFill exercises the
  // generic post-pass fallback through the same engine path. Both must be
  // value-identical to compute_stats on the (bit-identical) labeling.
  for (const Algorithm algorithm :
       {Algorithm::Aremsp, Algorithm::Paremsp, Algorithm::FloodFill}) {
    SCOPED_TRACE(std::string(algorithm_info(algorithm).name));
    const auto direct = make_labeler(algorithm);

    std::vector<BinaryImage> images;
    for (int i = 0; i < 8; ++i) {
      images.push_back(stream_image(1, i, 24 + 8 * (i % 3), 40 + 8 * (i % 4)));
    }
    images.push_back(BinaryImage());  // empty image rides along

    LabelingEngine eng({.workers = 3, .algorithm = algorithm});
    std::vector<std::future<LabelingWithStats>> futures;
    for (const BinaryImage& image : images) {
      futures.push_back(eng.submit_view_with_stats(image));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const LabelingWithStats got = futures[i].get();
      const LabelingResult want = direct->label(images[i]);
      expect_same_result(got.labeling, want, "image " + std::to_string(i));
      const auto oracle = analysis::compute_stats(
          got.labeling.labels, got.labeling.num_components);
      testing::expect_stats_identical(got.stats, oracle,
                                      "image " + std::to_string(i));
    }
    const auto stats = eng.stats();
    EXPECT_EQ(stats.jobs_completed, images.size());
  }
}

TEST(LabelingEngine, WithStatsKeepsArenasAllocationFree) {
  // The fused cells buffer lives in the worker's LabelScratch like every
  // other workspace: once warm, repeated stats jobs must not grow it.
  LabelingEngine eng({.workers = 1, .algorithm = Algorithm::Aremsp});
  const BinaryImage image = gen::texture_like(64, 64, 5);
  for (int i = 0; i < 3; ++i) {  // warm every buffer incl. the cells
    auto r = eng.submit_with_stats(image).get();
    eng.recycle(std::move(r.labeling.labels));
  }
  const auto warm = eng.stats();
  for (int i = 0; i < 5; ++i) {
    auto r = eng.submit_with_stats(image).get();
    eng.recycle(std::move(r.labeling.labels));
  }
  const auto after = eng.stats();
  EXPECT_EQ(after.scratch_grow_count, warm.scratch_grow_count)
      << "stats jobs allocated on a warm arena";
}

TEST(LabelingEngine, ConcurrentProducersGetDeterministicResults) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20;
  LabelingEngine eng({.workers = 2, .queue_capacity = 8});

  std::vector<std::vector<std::future<LabelingResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&eng, &futures, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        futures[static_cast<std::size_t>(t)].push_back(
            eng.submit(stream_image(t, i)));
      }
    });
  }
  for (std::thread& p : producers) p.join();

  const AremspLabeler reference;
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kPerProducer; ++i) {
      const LabelingResult got =
          futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)]
              .get();
      const LabelingResult want = reference.label(stream_image(t, i));
      expect_same_result(got, want,
                         "producer " + std::to_string(t) + " image " +
                             std::to_string(i));
    }
  }

  const auto stats = eng.stats();
  EXPECT_EQ(stats.jobs_submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.jobs_completed, kProducers * kPerProducer);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(LabelingEngine, ShutdownDrainsInFlightJobs) {
  std::vector<std::future<LabelingResult>> futures;
  const BinaryImage image = gen::landcover_like(64, 64, 5);
  const LabelingResult want = AremspLabeler().label(image);
  {
    LabelingEngine eng({.workers = 2, .queue_capacity = 4});
    for (int i = 0; i < 16; ++i) futures.push_back(eng.submit(image));
    eng.shutdown();  // explicit; destructor path covered on scope exit too
    EXPECT_THROW((void)eng.submit(BinaryImage(4, 4)), PreconditionError);
    EXPECT_EQ(eng.stats().jobs_completed, 16u);
  }
  // The engine is gone; every accepted job's future still yields a result.
  for (auto& f : futures) {
    expect_same_result(f.get(), want, "drained job");
  }
}

TEST(LabelingEngine, RecyclingKeepsArenasAllocationFree) {
  LabelingEngine eng({.workers = 1, .queue_capacity = 4});
  const Coord rows = 72, cols = 72;

  // Warm-up: let the single worker see the image size once.
  for (int i = 0; i < 4; ++i) {
    LabelingResult r = eng.submit(stream_image(9, i, rows, cols)).get();
    eng.recycle(std::move(r.labels));
  }
  const auto warm = eng.stats();

  for (int i = 4; i < 24; ++i) {
    LabelingResult r = eng.submit(stream_image(9, i, rows, cols)).get();
    eng.recycle(std::move(r.labels));
  }
  const auto done = eng.stats();

  // Steady state: zero new allocations, planes served from the pool.
  EXPECT_EQ(done.scratch_grow_count, warm.scratch_grow_count);
  EXPECT_GT(done.plane_reuses, warm.plane_reuses);
  EXPECT_GT(done.scratch_reserved_bytes, 0u);
}

TEST(LabelingEngine, StatsReportThroughputAndLatency) {
  LabelingEngine eng({.workers = 2});
  std::vector<BinaryImage> images;
  for (int i = 0; i < 10; ++i) images.push_back(stream_image(3, i));
  for (auto& f : eng.submit_batch(std::move(images))) (void)f.get();

  const auto s = eng.stats();
  EXPECT_EQ(s.jobs_submitted, 10u);
  EXPECT_EQ(s.jobs_completed, 10u);
  EXPECT_GT(s.pixels_labeled, 0);
  EXPECT_GT(s.images_per_sec, 0.0);
  EXPECT_GT(s.latency_p50_ms, 0.0);
  EXPECT_LE(s.latency_p50_ms, s.latency_p99_ms);
  EXPECT_LE(s.latency_p99_ms, s.latency_max_ms + 1e-9);
}

TEST(LabelingEngine, RejectsInvalidConfig) {
  EXPECT_THROW(LabelingEngine({.workers = -1}), PreconditionError);
  EXPECT_THROW(LabelingEngine({.queue_capacity = 0}), PreconditionError);
  // AREMSP is 8-connectivity only; the constructor validates eagerly so a
  // bad combination fails on the caller's thread, not inside every job.
  EngineConfig bad;
  bad.labeler.connectivity = Connectivity::Four;
  bad.algorithm = Algorithm::Aremsp;
  EXPECT_THROW(LabelingEngine{bad}, PreconditionError);
}

}  // namespace
}  // namespace paremsp
