// Tests for the raster containers and ASCII round-tripping.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "image/ascii.hpp"
#include "image/raster.hpp"

namespace paremsp {
namespace {

TEST(Raster, DefaultIsEmpty) {
  BinaryImage img;
  EXPECT_EQ(img.rows(), 0);
  EXPECT_EQ(img.cols(), 0);
  EXPECT_EQ(img.size(), 0);
  EXPECT_TRUE(img.empty());
}

TEST(Raster, ConstructsWithFill) {
  GrayImage img(3, 4, 7);
  EXPECT_EQ(img.rows(), 3);
  EXPECT_EQ(img.cols(), 4);
  EXPECT_EQ(img.size(), 12);
  for (const auto px : img.pixels()) EXPECT_EQ(px, 7);
}

TEST(Raster, ElementAccessRowMajor) {
  LabelImage img(2, 3);
  img(0, 0) = 1;
  img(0, 2) = 2;
  img(1, 0) = 3;
  EXPECT_EQ(img.pixels()[0], 1);
  EXPECT_EQ(img.pixels()[2], 2);
  EXPECT_EQ(img.pixels()[3], 3);
  EXPECT_EQ(img.row(1)[0], 3);
}

TEST(Raster, AtThrowsOutOfBounds) {
  BinaryImage img(2, 2);
  EXPECT_THROW((void)img.at(2, 0), PreconditionError);
  EXPECT_THROW((void)img.at(0, -1), PreconditionError);
  EXPECT_NO_THROW((void)img.at(1, 1));
}

TEST(Raster, AtOrFallsBack) {
  BinaryImage img(2, 2, 1);
  EXPECT_EQ(img.at_or(0, 0), 1);
  EXPECT_EQ(img.at_or(-1, 0), 0);
  EXPECT_EQ(img.at_or(0, 2, 9), 9);
}

TEST(Raster, EqualityAndFill) {
  BinaryImage a(2, 2, 1);
  BinaryImage b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(1, 1) = 0;
  EXPECT_NE(a, b);
  b.fill(1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, BinaryImage(2, 3, 1));
}

TEST(Raster, NegativeDimensionsThrow) {
  EXPECT_THROW(BinaryImage(-1, 4), PreconditionError);
  EXPECT_THROW(BinaryImage(4, -1), PreconditionError);
}

TEST(Raster, OversizeThrows) {
  EXPECT_THROW(BinaryImage(1 << 16, 1 << 16), PreconditionError);
}

TEST(Raster, ZeroByNIsEmptyButValid) {
  BinaryImage img(0, 5);
  EXPECT_EQ(img.size(), 0);
  EXPECT_TRUE(img.empty());
  BinaryImage img2(5, 0);
  EXPECT_EQ(img2.size(), 0);
}

TEST(Rgb, Equality) {
  EXPECT_EQ((Rgb{1, 2, 3}), (Rgb{1, 2, 3}));
  EXPECT_NE((Rgb{1, 2, 3}), (Rgb{1, 2, 4}));
}

// --- ASCII ------------------------------------------------------------------

TEST(Ascii, RoundTripsBinaryImages) {
  const std::string art =
      "#..#\n"
      ".##.\n"
      "#..#\n";
  const BinaryImage img = binary_from_ascii(art);
  EXPECT_EQ(img.rows(), 3);
  EXPECT_EQ(img.cols(), 4);
  EXPECT_EQ(to_ascii(img), art);
}

TEST(Ascii, TrimsSurroundingNewlines) {
  const BinaryImage img = binary_from_ascii("\n##\n..\n");
  EXPECT_EQ(img.rows(), 2);
  EXPECT_EQ(img.cols(), 2);
  EXPECT_EQ(img(0, 0), 1);
  EXPECT_EQ(img(1, 0), 0);
}

TEST(Ascii, CustomForegroundChar) {
  const BinaryImage img = binary_from_ascii("X.\n.X", 'X');
  EXPECT_EQ(img(0, 0), 1);
  EXPECT_EQ(img(0, 1), 0);
  EXPECT_EQ(img(1, 1), 1);
}

TEST(Ascii, RaggedRowsThrow) {
  EXPECT_THROW(binary_from_ascii("##\n#"), PreconditionError);
}

TEST(Ascii, EmptyStringGivesEmptyImage) {
  const BinaryImage img = binary_from_ascii("");
  EXPECT_TRUE(img.empty());
}

TEST(Ascii, LabelRenderingUsesPaletteAndDots) {
  LabelImage labels(1, 4);
  labels(0, 0) = 0;
  labels(0, 1) = 1;
  labels(0, 2) = 2;
  labels(0, 3) = 10;
  EXPECT_EQ(to_ascii(labels), ".12A\n");
}

}  // namespace
}  // namespace paremsp
