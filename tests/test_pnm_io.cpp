// Tests for Netpbm I/O: ASCII/binary round trips, header handling,
// malformed-input rejection, and file-level wrappers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/contracts.hpp"
#include "common/prng.hpp"
#include "image/generators.hpp"
#include "image/pnm_io.hpp"

namespace paremsp {
namespace {

BinaryImage sample_binary() { return gen::uniform_noise(13, 17, 0.4, 5); }

GrayImage sample_gray() { return gen::plasma(9, 14, 3); }

RgbImage sample_rgb() { return gen::color_test_card(8, 11, 2); }

class PnmRoundTrip : public ::testing::TestWithParam<PnmEncoding> {};

TEST_P(PnmRoundTrip, Pbm) {
  const BinaryImage original = sample_binary();
  std::stringstream buf;
  write_pbm(original, buf, GetParam());
  EXPECT_EQ(read_pbm(buf), original);
}

TEST_P(PnmRoundTrip, PbmWidthsAroundByteBoundaries) {
  for (const Coord cols : {1, 7, 8, 9, 15, 16, 17}) {
    const BinaryImage original = gen::uniform_noise(5, cols, 0.5, 99);
    std::stringstream buf;
    write_pbm(original, buf, GetParam());
    EXPECT_EQ(read_pbm(buf), original) << "cols=" << cols;
  }
}

TEST_P(PnmRoundTrip, Pgm) {
  const GrayImage original = sample_gray();
  std::stringstream buf;
  write_pgm(original, buf, GetParam());
  EXPECT_EQ(read_pgm(buf), original);
}

TEST_P(PnmRoundTrip, Ppm) {
  const RgbImage original = sample_rgb();
  std::stringstream buf;
  write_ppm(original, buf, GetParam());
  EXPECT_EQ(read_ppm(buf), original);
}

INSTANTIATE_TEST_SUITE_P(Encodings, PnmRoundTrip,
                         ::testing::Values(PnmEncoding::Ascii,
                                           PnmEncoding::Binary),
                         [](const auto& pinfo) {
                           return pinfo.param == PnmEncoding::Ascii ? "ascii"
                                                                   : "binary";
                         });

TEST(PnmIo, ReadsCommentsAndWhitespace) {
  std::stringstream buf(
      "P1\n"
      "# a comment line\n"
      "  3 # width\n"
      " 2\n"
      "1 0 1\n0 1 0\n");
  const BinaryImage img = read_pbm(buf);
  EXPECT_EQ(img.rows(), 2);
  EXPECT_EQ(img.cols(), 3);
  EXPECT_EQ(img(0, 0), 1);
  EXPECT_EQ(img(0, 1), 0);
  EXPECT_EQ(img(1, 1), 1);
}

TEST(PnmIo, RejectsWrongMagic) {
  std::stringstream buf("P7\n2 2\n0 0 0 0\n");
  EXPECT_THROW((void)read_pbm(buf), PreconditionError);
  std::stringstream buf2("P1\n2 2\n0 0 0 0\n");
  EXPECT_THROW((void)read_pgm(buf2), PreconditionError);
}

TEST(PnmIo, RejectsTruncatedData) {
  std::stringstream buf("P1\n3 3\n1 0 1\n");
  EXPECT_THROW((void)read_pbm(buf), PreconditionError);

  std::stringstream raw("P5\n4 4\n255\nab");  // 2 of 16 bytes
  EXPECT_THROW((void)read_pgm(raw), PreconditionError);
}

TEST(PnmIo, RejectsBadPixelValues) {
  std::stringstream buf("P1\n2 1\n1 2\n");
  EXPECT_THROW((void)read_pbm(buf), PreconditionError);

  std::stringstream pgm("P2\n2 1\n100\n5 101\n");
  EXPECT_THROW((void)read_pgm(pgm), PreconditionError);
}

TEST(PnmIo, RejectsOversizedMaxval) {
  std::stringstream pgm("P2\n1 1\n65535\n1234\n");
  EXPECT_THROW((void)read_pgm(pgm), PreconditionError);
}

TEST(PnmIo, EmptyImageRoundTrips) {
  const BinaryImage empty(0, 0);
  std::stringstream buf;
  write_pbm(empty, buf, PnmEncoding::Binary);
  EXPECT_EQ(read_pbm(buf), empty);
}

TEST(PnmIo, FileRoundTripAndMissingFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "paremsp_pnm_test";
  fs::create_directories(dir);
  const fs::path path = dir / "img.pbm";

  const BinaryImage original = sample_binary();
  write_pbm(original, path);
  EXPECT_EQ(read_pbm(path), original);
  fs::remove(path);
  EXPECT_THROW((void)read_pbm(path), PreconditionError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace paremsp
