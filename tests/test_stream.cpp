// Streaming slab sessions: differential equivalence against one-shot
// labeling of the concatenated image. The contract under test
// (stream/slab_session.hpp): for ANY way of cutting an image into
// horizontal slabs — uniform heights, random ragged partitions, 1-row
// slabs, the whole image as one slab — the session's component count,
// fused stats (bit-identical), and per-slab planes composed through the
// finish() remap tables equal the one-shot result exactly, for both
// connectivities and both scan modes. Randomized cases replay via
// PAREMSP_TEST_SEED:
//
//   PAREMSP_TEST_SEED=<seed> ./paremsp_tests --gtest_filter='Stream*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "core/registry.hpp"
#include "core/request.hpp"
#include "image/generators.hpp"
#include "stream/slab_session.hpp"

namespace paremsp {
namespace {

using stream::SlabResult;
using stream::SlabSession;
using stream::StreamOptions;
using stream::StreamResult;

/// Content mix with every seam flavor: organic patches, a spiral that
/// crosses any horizontal cut many times, corner-contact checkerboards
/// (the 8-vs-4 discriminator), and noise.
BinaryImage stream_image(Coord rows, Coord cols, std::uint64_t seed) {
  switch (seed % 4) {
    case 0: return gen::landcover_like(rows, cols, seed);
    case 1: return gen::spiral(rows, cols, 2, 3);
    case 2: return gen::checkerboard(rows, cols, 1);
    default: return gen::uniform_noise(rows, cols, 0.5, seed);
  }
}

GrayImage gray_image(Coord rows, Coord cols, std::uint64_t seed) {
  GrayImage image(rows, cols);
  std::mt19937_64 rng(seed);
  for (Coord r = 0; r < rows; ++r) {
    std::uint8_t* row = image.row(r);
    for (Coord c = 0; c < cols; ++c) {
      row[c] = static_cast<std::uint8_t>(rng() & 0xff);
    }
  }
  return image;
}

/// One-shot reference over the concatenated image (run-based AREMSP via
/// the unified request API — the same kernels the session reuses, but
/// exercised through a totally different control path).
LabelResponse one_shot(ConstImageView input, const StreamOptions& opts) {
  LabelRequest request;
  request.input = input;
  request.connectivity = opts.connectivity;
  request.threshold = opts.threshold;
  request.outputs.stats = opts.stats;
  return make_labeler(Algorithm::AremspRle)->run(request);
}

/// Stream `input` through a session with the given slab heights and
/// check every acceptance property against the one-shot reference.
void expect_stream_matches(ConstImageView input, StreamOptions opts,
                           const std::vector<Coord>& heights,
                           const std::string& context) {
  const Coord rows = input.rows();
  const Coord cols = input.cols();
  opts.cols = cols;
  const LabelResponse ref = one_shot(input, opts);

  SlabSession session(opts);
  std::vector<LabelImage> planes;
  Coord consumed = 0;
  std::size_t carried_prev = 0;
  for (std::size_t k = 0; consumed < rows; ++k) {
    const Coord take =
        std::min(heights[k % heights.size()], rows - consumed);
    SlabResult slab =
        session.push_slab(input.subview(consumed, 0, take, cols));
    EXPECT_EQ(slab.row_begin, consumed) << context;
    EXPECT_EQ(slab.rows, take) << context;
    EXPECT_EQ(slab.slab_index, k) << context;
    EXPECT_EQ(slab.carried_in, carried_prev) << context;
    EXPECT_LE(slab.open_components, slab.seam_runs_out) << context;
    carried_prev = slab.seam_runs_out;
    if (opts.labels) planes.push_back(std::move(slab.labels));
    consumed += take;
  }
  const std::size_t slabs = session.slabs_pushed();
  EXPECT_GT(session.seam_state_bytes(), 0u) << context;

  StreamResult done = session.finish();
  EXPECT_EQ(done.num_components, ref.num_components) << context;
  EXPECT_EQ(done.rows, rows) << context;
  EXPECT_EQ(done.slabs, slabs) << context;
  ASSERT_EQ(done.slab_remaps.size(), slabs) << context;
  // finish() releases the carried seam and tracking state.
  EXPECT_EQ(session.seam_state_bytes(), 0u) << context;

  if (opts.labels) {
    // Composing each slab's remap table over its plane must reproduce
    // the one-shot labeling row for row.
    Coord r0 = 0;
    for (std::size_t k = 0; k < planes.size(); ++k) {
      const std::vector<Label>& remap = done.slab_remaps[k];
      for (Coord r = 0; r < planes[k].rows(); ++r) {
        const Label* got = planes[k].row(r);
        const Label* want = ref.labels.row(r0 + r);
        for (Coord c = 0; c < cols; ++c) {
          const Label local = got[c];
          ASSERT_LT(static_cast<std::size_t>(local), remap.size())
              << context << " slab " << k;
          if (remap[static_cast<std::size_t>(local)] != want[c]) {
            FAIL() << context << ": slab " << k << " pixel (" << r << ", "
                   << c << ") remaps to "
                   << remap[static_cast<std::size_t>(local)]
                   << ", one-shot labeled " << want[c];
          }
        }
      }
      r0 += planes[k].rows();
    }
  }

  if (opts.stats) {
    ASSERT_TRUE(done.stats.has_value()) << context;
    ASSERT_TRUE(ref.stats.has_value()) << context;
    // Bit-identical, centroid doubles included: both sides divide the
    // same exact integer sums by the same areas.
    EXPECT_EQ(done.stats->components, ref.stats->components) << context;
  }
}

std::string case_name(Connectivity conn, ShardScan scan, Coord rows,
                      Coord cols, std::uint64_t seed,
                      const std::vector<Coord>& heights) {
  std::ostringstream os;
  os << (conn == Connectivity::Eight ? "8-conn" : "4-conn") << "/"
     << to_string(scan) << " " << rows << "x" << cols << " seed=" << seed
     << " heights={";
  for (std::size_t i = 0; i < heights.size(); ++i) {
    os << (i != 0 ? "," : "") << heights[i];
  }
  os << "} (set PAREMSP_TEST_SEED to replay)";
  return os.str();
}

TEST(Stream, SlabHeightSweepMatchesOneShotBothConnectivitiesAndScans) {
  const std::uint64_t seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  const Coord rows = 37, cols = 53;
  for (const Connectivity conn : {Connectivity::Eight, Connectivity::Four}) {
    for (const ShardScan scan : {ShardScan::Runs, ShardScan::Pixel}) {
      if (scan == ShardScan::Pixel && conn == Connectivity::Four) continue;
      for (std::uint64_t variant = 0; variant < 4; ++variant) {
        const BinaryImage image = stream_image(rows, cols, seed + variant);
        // 1-row slabs, even/odd heights (odd heights park later slabs on
        // odd global rows — the two-line pair-straddle case), and the
        // degenerate single full-image slab.
        for (const Coord h : {Coord{1}, Coord{2}, Coord{3}, Coord{5},
                              Coord{16}, rows}) {
          StreamOptions opts;
          opts.connectivity = conn;
          opts.scan = scan;
          opts.stats = true;
          expect_stream_matches(
              ConstImageView(image), opts, {h},
              case_name(conn, scan, rows, cols, seed + variant, {h}));
        }
      }
    }
  }
}

TEST(Stream, RandomizedRaggedPartitionsMatchOneShot) {
  const std::uint64_t seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  for (int trial = 0; trial < 12; ++trial) {
    const Coord rows = 8 + static_cast<Coord>(rng() % 90);
    const Coord cols = 1 + static_cast<Coord>(rng() % 70);
    const BinaryImage image = stream_image(rows, cols, rng());
    // A full random partition: every slab a different height.
    std::vector<Coord> heights;
    Coord planned = 0;
    while (planned < rows) {
      const Coord h = 1 + static_cast<Coord>(rng() % 11);
      heights.push_back(h);
      planned += h;
    }
    StreamOptions opts;
    opts.connectivity =
        (rng() & 1) != 0 ? Connectivity::Eight : Connectivity::Four;
    opts.scan = ShardScan::Runs;
    opts.stats = (rng() & 1) != 0;
    expect_stream_matches(ConstImageView(image), opts, heights,
                          case_name(opts.connectivity, opts.scan, rows, cols,
                                    seed, heights));
  }
}

TEST(Stream, FusedThresholdStreamingMatchesOneShotGrayscale) {
  const std::uint64_t seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  const Coord rows = 45, cols = 33;
  const GrayImage gray = gray_image(rows, cols, seed);
  for (const ShardScan scan : {ShardScan::Runs, ShardScan::Pixel}) {
    for (const double threshold : {0.25, 0.5, 0.75}) {
      StreamOptions opts;
      opts.scan = scan;
      opts.threshold = threshold;
      opts.stats = true;
      expect_stream_matches(ConstImageView(gray), opts, {Coord{7}},
                            case_name(Connectivity::Eight, scan, rows, cols,
                                      seed, {Coord{7}}));
    }
  }
}

TEST(Stream, StatsOnlySessionNeverMaterializesPlanes) {
  const BinaryImage image = stream_image(40, 40, 2);
  StreamOptions opts;
  opts.labels = false;
  opts.stats = true;
  expect_stream_matches(ConstImageView(image), opts, {Coord{6}},
                        "stats-only Runs session");
}

TEST(Stream, AllBackgroundAndAllForegroundStreams) {
  for (const std::uint8_t fill : {std::uint8_t{0}, std::uint8_t{1}}) {
    BinaryImage image(29, 17);
    for (Coord r = 0; r < image.rows(); ++r) {
      std::fill_n(image.row(r), image.cols(), fill);
    }
    for (const Connectivity conn :
         {Connectivity::Eight, Connectivity::Four}) {
      StreamOptions opts;
      opts.connectivity = conn;
      opts.stats = true;
      expect_stream_matches(ConstImageView(image), opts, {Coord{4}},
                            fill != 0 ? "all foreground" : "all background");
    }
  }
}

TEST(Stream, SingleColumnAndSingleRowGeometries) {
  const std::uint64_t seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  {
    const BinaryImage tall = gen::uniform_noise(64, 1, 0.6, seed);
    StreamOptions opts;
    opts.stats = true;
    expect_stream_matches(ConstImageView(tall), opts, {Coord{1}},
                          "64x1 column, 1-row slabs");
  }
  {
    const BinaryImage wide = gen::uniform_noise(1, 64, 0.6, seed);
    StreamOptions opts;
    opts.stats = true;
    expect_stream_matches(ConstImageView(wide), opts, {Coord{1}},
                          "1x64 row, single slab");
  }
}

TEST(Stream, EmptySessionFinishResolvesToNothing) {
  StreamOptions opts;
  opts.cols = 8;
  SlabSession session(opts);
  const StreamResult done = session.finish();
  EXPECT_EQ(done.num_components, 0);
  EXPECT_EQ(done.rows, 0);
  EXPECT_EQ(done.slabs, 0u);
  EXPECT_TRUE(done.slab_remaps.empty());
}

// ---- Failing configurations: errors, never UB ---------------------------

TEST(StreamValidation, RejectsInvalidOptions) {
  EXPECT_THROW(SlabSession((StreamOptions{})), PreconditionError);  // cols 0
  {
    StreamOptions opts;
    opts.cols = 8;
    opts.threshold = 1.5;
    EXPECT_THROW(SlabSession{opts}, PreconditionError);
  }
  {
    StreamOptions opts;
    opts.cols = 8;
    opts.threshold = -0.1;
    EXPECT_THROW(SlabSession{opts}, PreconditionError);
  }
  {
    // The pixel scan kernel is 8-connectivity only, same as sharding.
    StreamOptions opts;
    opts.cols = 8;
    opts.scan = ShardScan::Pixel;
    opts.connectivity = Connectivity::Four;
    EXPECT_THROW(SlabSession{opts}, PreconditionError);
  }
}

TEST(StreamValidation, RejectsMismatchedAndDegenerateSlabs) {
  StreamOptions opts;
  opts.cols = 16;
  SlabSession session(opts);
  const BinaryImage wrong_width = gen::uniform_noise(4, 8, 0.5, 1);
  EXPECT_THROW(session.push_slab(ConstImageView(wrong_width)),
               PreconditionError);
  const BinaryImage right_width = gen::uniform_noise(4, 16, 0.5, 1);
  EXPECT_THROW(
      session.push_slab(ConstImageView(right_width).subview(0, 0, 0, 16)),
      PreconditionError);
  // The session survives rejected pushes: a valid push still works.
  EXPECT_NO_THROW(session.push_slab(ConstImageView(right_width)));
}

TEST(StreamValidation, DoubleFinishAndPushAfterFinishThrow) {
  StreamOptions opts;
  opts.cols = 8;
  SlabSession session(opts);
  const BinaryImage image = gen::uniform_noise(3, 8, 0.5, 7);
  (void)session.push_slab(ConstImageView(image));
  (void)session.finish();
  EXPECT_TRUE(session.finished());
  EXPECT_THROW((void)session.finish(), PreconditionError);
  EXPECT_THROW((void)session.push_slab(ConstImageView(image)),
               PreconditionError);
}

TEST(StreamValidation, RequestDeadlineMustBePositive) {
  const BinaryImage image = gen::uniform_noise(8, 8, 0.5, 3);
  const auto labeler = make_labeler(Algorithm::AremspRle);
  for (const auto budget :
       {std::chrono::nanoseconds{0}, std::chrono::nanoseconds{-5}}) {
    LabelRequest request;
    request.input = ConstImageView(image);
    request.deadline = budget;
    EXPECT_THROW((void)labeler->run(request), PreconditionError);
  }
}

TEST(StreamValidation, DirectRunHonorsCancellationAtEntry) {
  const BinaryImage image = gen::uniform_noise(8, 8, 0.5, 3);
  CancelSource source;
  LabelRequest request;
  request.input = ConstImageView(image);
  request.cancel = source.token();
  const auto labeler = make_labeler(Algorithm::AremspRle);
  EXPECT_NO_THROW((void)labeler->run(request));  // token not yet fired
  source.request_cancel();
  EXPECT_THROW((void)labeler->run(request), CancelledError);
}

}  // namespace
}  // namespace paremsp
