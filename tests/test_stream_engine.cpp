// Engine streaming sessions + QoS: StreamSession end-to-end equivalence
// through the worker pool, bounded-window backpressure, deadline /
// cancellation semantics on every executor path (one-shot pickup,
// sharded phase boundaries, stream slab boundaries), and clean failure
// under cancellation or shutdown racing a live session. Suites all match
// the Stream* filter used by the TSan CI job:
//
//   ./paremsp_tests --gtest_filter='Stream*'
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "core/registry.hpp"
#include "core/request.hpp"
#include "engine/engine.hpp"
#include "engine/stream_session.hpp"
#include "image/generators.hpp"
#include "stream/slab_session.hpp"

namespace paremsp {
namespace {

using engine::EngineConfig;
using engine::LabelingEngine;
using engine::StreamConfig;
using stream::SlabResult;
using stream::StreamOptions;
using stream::StreamResult;

BinaryImage stream_image(Coord rows, Coord cols, std::uint64_t seed) {
  switch (seed % 3) {
    case 0: return gen::landcover_like(rows, cols, seed);
    case 1: return gen::spiral(rows, cols, 2, 3);
    default: return gen::uniform_noise(rows, cols, 0.5, seed);
  }
}

LabelResponse one_shot(ConstImageView input, const StreamOptions& opts) {
  LabelRequest request;
  request.input = input;
  request.connectivity = opts.connectivity;
  request.threshold = opts.threshold;
  request.outputs.stats = opts.stats;
  return make_labeler(Algorithm::AremspRle)->run(request);
}

/// Push `input` through an engine session in `slab_rows`-row slabs and
/// check the composed result against the one-shot reference.
void expect_engine_stream_matches(LabelingEngine& eng, ConstImageView input,
                                  StreamConfig config, Coord slab_rows) {
  const Coord rows = input.rows();
  const Coord cols = input.cols();
  config.options.cols = cols;
  const LabelResponse ref = one_shot(input, config.options);

  auto session = eng.open_stream(config);
  std::vector<std::future<SlabResult>> futures;
  for (Coord r = 0; r < rows; r += slab_rows) {
    const Coord take = std::min(slab_rows, rows - r);
    futures.push_back(session->push_slab(input.subview(r, 0, take, cols)));
  }
  std::vector<LabelImage> planes;
  for (auto& f : futures) planes.push_back(f.get().labels);
  StreamResult done = session->finish().get();

  EXPECT_EQ(done.num_components, ref.num_components);
  ASSERT_EQ(done.slab_remaps.size(), planes.size());
  Coord r0 = 0;
  for (std::size_t k = 0; k < planes.size(); ++k) {
    const std::vector<Label>& remap = done.slab_remaps[k];
    for (Coord r = 0; r < planes[k].rows(); ++r) {
      const Label* got = planes[k].row(r);
      const Label* want = ref.labels.row(r0 + r);
      for (Coord c = 0; c < cols; ++c) {
        ASSERT_EQ(remap[static_cast<std::size_t>(got[c])], want[c])
            << "slab " << k << " pixel (" << r << ", " << c << ")";
      }
    }
    r0 += planes[k].rows();
    // Hand planes back: steady-state sessions should re-label out of the
    // recycled pool (correctness must be unaffected either way).
    session->recycle(std::move(planes[k]));
  }
  if (config.options.stats) {
    ASSERT_TRUE(done.stats.has_value());
    ASSERT_TRUE(ref.stats.has_value());
    EXPECT_EQ(done.stats->components, ref.stats->components);
  }
}

// --- End-to-end through the pool -------------------------------------------

TEST(StreamEngine, SessionMatchesOneShotAcrossWindowsAndConnectivities) {
  LabelingEngine eng({.workers = 4});
  const BinaryImage image = stream_image(96, 72, 7);
  for (const std::size_t window : {std::size_t{1}, std::size_t{4}}) {
    for (const Connectivity conn :
         {Connectivity::Eight, Connectivity::Four}) {
      StreamConfig config;
      config.options.connectivity = conn;
      config.options.stats = true;
      config.window = window;
      expect_engine_stream_matches(eng, ConstImageView(image), config, 5);
    }
  }
  const auto stats = eng.stats();
  EXPECT_EQ(stats.stream_sessions_opened, 4u);
  EXPECT_EQ(stats.stream_sessions_completed, 4u);
  // 96 rows in 5-row slabs = 20 slabs per session.
  EXPECT_EQ(stats.stream_slabs_completed, 80u);
  EXPECT_EQ(stats.jobs_shed, 0u);
  EXPECT_EQ(stats.jobs_cancelled, 0u);
}

TEST(StreamEngine, WindowOneIsLockstep) {
  // With window = 1 the second push may only return once the first
  // slab's future is already fulfilled — that IS the backpressure
  // contract, observable without any timing assumptions.
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(30, 40, 1);
  StreamConfig config;
  config.options.cols = 40;
  config.window = 1;
  auto session = eng.open_stream(config);
  auto f0 = session->push_slab(ConstImageView(image).subview(0, 0, 10, 40));
  auto f1 = session->push_slab(ConstImageView(image).subview(10, 0, 10, 40));
  EXPECT_EQ(f0.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto f2 = session->push_slab(ConstImageView(image).subview(20, 0, 10, 40));
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  (void)f2.get();
  (void)session->finish().get();
}

// --- Validation (caller bugs throw synchronously, nothing poisons) ---------

TEST(StreamEngineValidation, RejectsBadConfigs) {
  LabelingEngine eng({.workers = 1});
  StreamConfig no_cols;  // options.cols defaults to 0
  EXPECT_THROW((void)eng.open_stream(no_cols), PreconditionError);

  StreamConfig zero_window;
  zero_window.options.cols = 8;
  zero_window.window = 0;
  EXPECT_THROW((void)eng.open_stream(zero_window), PreconditionError);

  StreamConfig zero_deadline;
  zero_deadline.options.cols = 8;
  zero_deadline.deadline = Deadline{0};
  EXPECT_THROW((void)eng.open_stream(zero_deadline), PreconditionError);

  StreamConfig negative_deadline;
  negative_deadline.options.cols = 8;
  negative_deadline.deadline = Deadline{-5};
  EXPECT_THROW((void)eng.open_stream(negative_deadline), PreconditionError);
}

TEST(StreamEngineValidation, CallerBugsThrowWithoutPoisoningTheSession) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(24, 32, 2);
  StreamConfig config;
  config.options.cols = 32;
  auto session = eng.open_stream(config);

  const BinaryImage wrong_width(4, 16);
  EXPECT_THROW((void)session->push_slab(ConstImageView(wrong_width)),
               PreconditionError);
  EXPECT_THROW(
      (void)session->push_slab(ConstImageView(image).subview(0, 0, 0, 32)),
      PreconditionError);

  // The rejected calls must not have broken the session.
  auto fut = session->push_slab(ConstImageView(image));
  EXPECT_EQ(fut.get().rows, 24);
  StreamResult done = session->finish().get();
  EXPECT_EQ(done.slabs, 1u);

  EXPECT_THROW((void)session->push_slab(ConstImageView(image)),
               PreconditionError);  // push after finish
  EXPECT_THROW((void)session->finish(), PreconditionError);  // double finish
}

// --- QoS: deadlines and cancellation on every executor path ----------------

TEST(StreamEngineQoS, ExpiredDeadlineShedsStreamSlabs) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(16, 24, 3);
  StreamConfig config;
  config.options.cols = 24;
  config.deadline = std::chrono::nanoseconds(1);  // expired by any pickup
  auto session = eng.open_stream(config);
  auto slab = session->push_slab(ConstImageView(image));
  auto done = session->finish();
  EXPECT_THROW((void)slab.get(), DeadlineExceededError);
  EXPECT_THROW((void)done.get(), DeadlineExceededError);
  EXPECT_GE(eng.stats().jobs_shed, 1u);
  EXPECT_EQ(eng.stats().stream_sessions_completed, 0u);
}

TEST(StreamEngineQoS, PreCancelledTokenFailsStreamSlabs) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(16, 24, 4);
  CancelSource source;
  source.request_cancel();
  StreamConfig config;
  config.options.cols = 24;
  config.cancel = source.token();
  auto session = eng.open_stream(config);
  auto slab = session->push_slab(ConstImageView(image));
  EXPECT_THROW((void)slab.get(), CancelledError);
  // A poisoned session fails later ops with the original cause.
  auto done = session->finish();
  EXPECT_THROW((void)done.get(), CancelledError);
  EXPECT_GE(eng.stats().jobs_cancelled, 1u);
}

TEST(StreamEngineQoS, OneShotDeadlineShedsAtPickup) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(32, 32, 5);
  LabelRequest request;
  request.input = ConstImageView(image);
  request.deadline = std::chrono::nanoseconds(1);
  auto fut = eng.submit(std::move(request));
  EXPECT_THROW((void)fut.get(), DeadlineExceededError);
  const auto stats = eng.stats();
  EXPECT_GE(stats.jobs_shed, 1u);
  EXPECT_GE(stats.jobs_failed, 1u);  // shed jobs ARE failed completions
}

TEST(StreamEngineQoS, OneShotPreCancelledFailsCleanly) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(32, 32, 6);
  CancelSource source;
  source.request_cancel();
  LabelRequest request;
  request.input = ConstImageView(image);
  request.cancel = source.token();
  auto fut = eng.submit(std::move(request));
  EXPECT_THROW((void)fut.get(), CancelledError);
  EXPECT_GE(eng.stats().jobs_cancelled, 1u);
}

TEST(StreamEngineQoS, ShardedDeadlineShedsAtPhaseBoundary) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(64, 64, 7);
  LabelRequest request;
  request.input = ConstImageView(image);
  request.shard = ShardOptions{};
  request.deadline = std::chrono::nanoseconds(1);
  auto fut = eng.submit(std::move(request));
  EXPECT_THROW((void)fut.get(), DeadlineExceededError);
  EXPECT_GE(eng.stats().jobs_shed, 1u);
}

TEST(StreamEngineQoS, ShardedPreCancelledFailsCleanly) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = stream_image(64, 64, 8);
  CancelSource source;
  source.request_cancel();
  LabelRequest request;
  request.input = ConstImageView(image);
  request.shard = ShardOptions{};
  request.cancel = source.token();
  auto fut = eng.submit(std::move(request));
  EXPECT_THROW((void)fut.get(), CancelledError);
  EXPECT_GE(eng.stats().jobs_cancelled, 1u);
}

// --- Races (TSan targets) --------------------------------------------------

TEST(StreamEngineRace, CancellationMidSessionIsClean) {
  LabelingEngine eng({.workers = 4});
  const BinaryImage image = stream_image(200, 48, 9);
  CancelSource source;
  StreamConfig config;
  config.options.cols = 48;
  config.window = 4;
  config.cancel = source.token();
  auto session = eng.open_stream(config);

  std::vector<std::future<SlabResult>> futures;
  std::thread producer([&] {
    for (Coord r = 0; r < 200; r += 2) {
      try {
        futures.push_back(
            session->push_slab(ConstImageView(image).subview(r, 0, 2, 48)));
      } catch (const PreconditionError&) {
        break;  // not expected, but harmless if validation ever raced
      }
    }
  });
  source.request_cancel();  // races slab processing and blocked pushes
  producer.join();

  std::size_t delivered = 0;
  std::size_t cancelled = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++delivered;
    } catch (const CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(delivered + cancelled, futures.size());
  // Whether or not the token won the race against the slabs, it fired
  // before finish() — the resolve op must observe it.
  EXPECT_THROW((void)session->finish().get(), CancelledError);
  EXPECT_GE(eng.stats().jobs_cancelled, 1u);
}

TEST(StreamEngineRace, ShutdownMidSessionFailsFuturesCleanly) {
  std::optional<LabelingEngine> eng;
  eng.emplace(EngineConfig{.workers = 2});
  const BinaryImage image = stream_image(120, 40, 10);
  StreamConfig config;
  config.options.cols = 40;
  config.window = 8;
  auto session = eng->open_stream(config);

  std::vector<std::future<SlabResult>> futures;
  for (Coord r = 0; r < 120; r += 2) {
    futures.push_back(
        session->push_slab(ConstImageView(image).subview(r, 0, 2, 40)));
  }
  eng->shutdown();  // races the chained slab tasks

  std::size_t delivered = 0;
  std::size_t failed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++delivered;
    } catch (const PreconditionError&) {
      ++failed;  // "LabelingEngine shut down mid-session"
    }
  }
  EXPECT_EQ(delivered + failed, futures.size());
  // After shutdown every new op fails; the future never hangs.
  EXPECT_THROW((void)session->finish().get(), PreconditionError);
}

}  // namespace
}  // namespace paremsp
