// Metamorphic testing of component features: geometric transforms of the
// INPUT image permute and remap components in exactly predictable ways, so
// the feature multiset of the transformed image must equal the predictably
// transformed feature multiset of the original — for every registry
// algorithm, fused or fallback, under both connectivities. A labeling
// permutation of the OUTPUT must leave the multiset untouched entirely.
//
// The relations hold EXACTLY (not approximately): area and bbox are
// integers, and centroids are carried as exact integer coordinate sums
// (ComponentInfo::row_sum/col_sum), so e.g. a horizontal flip maps
// col_sum -> area * (cols - 1) - col_sum with no floating-point slack.
// That exactness is what makes these tests sharp enough to catch a fused
// accumulator that is off by a single pixel.
//
// The randomized part of the matrix derives its seeds from
// PAREMSP_TEST_SEED (common/env.hpp), and every assertion names the exact
// seed, so CI failures replay verbatim:
//   PAREMSP_TEST_SEED=<seed> ./paremsp_tests --gtest_filter='Metamorphic.*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/component_stats.hpp"
#include "common/env.hpp"
#include "common/prng.hpp"
#include "core/registry.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"

namespace paremsp {
namespace {

/// One component's features with the label dropped: the multiset identity
/// the metamorphic relations quantify over. Everything integer → exact.
using FeatureKey = std::tuple<std::int64_t,              // area
                              Coord, Coord, Coord, Coord,  // bbox
                              std::int64_t, std::int64_t>; // row/col sums

FeatureKey key_of(const analysis::ComponentInfo& c) {
  return {c.area,        c.bbox.row_min, c.bbox.col_min, c.bbox.row_max,
          c.bbox.col_max, c.row_sum,      c.col_sum};
}

std::vector<FeatureKey> sorted_features(const analysis::ComponentStats& s) {
  std::vector<FeatureKey> keys;
  keys.reserve(s.components.size());
  for (const auto& c : s.components) keys.push_back(key_of(c));
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- Input transforms -------------------------------------------------------

BinaryImage hflip(const BinaryImage& img) {
  BinaryImage out(img.rows(), img.cols());
  for (Coord r = 0; r < img.rows(); ++r) {
    for (Coord c = 0; c < img.cols(); ++c) {
      out(r, img.cols() - 1 - c) = img(r, c);
    }
  }
  return out;
}

BinaryImage vflip(const BinaryImage& img) {
  BinaryImage out(img.rows(), img.cols());
  for (Coord r = 0; r < img.rows(); ++r) {
    for (Coord c = 0; c < img.cols(); ++c) {
      out(img.rows() - 1 - r, c) = img(r, c);
    }
  }
  return out;
}

BinaryImage transpose(const BinaryImage& img) {
  BinaryImage out(img.cols(), img.rows());
  for (Coord r = 0; r < img.rows(); ++r) {
    for (Coord c = 0; c < img.cols(); ++c) {
      out(c, r) = img(r, c);
    }
  }
  return out;
}

// --- Feature transforms (inverse images of the input transforms) ------------

/// Features of the h-flipped image, mapped back to original coordinates:
/// c -> cols-1-c swaps/reflects the column extremes and reflects col_sum.
FeatureKey unflip_h(const FeatureKey& k, Coord cols) {
  const auto [area, rmin, cmin, rmax, cmax, rsum, csum] = k;
  return {area, rmin, cols - 1 - cmax, rmax, cols - 1 - cmin, rsum,
          area * static_cast<std::int64_t>(cols - 1) - csum};
}

FeatureKey unflip_v(const FeatureKey& k, Coord rows) {
  const auto [area, rmin, cmin, rmax, cmax, rsum, csum] = k;
  return {area, rows - 1 - rmax, cmin, rows - 1 - rmin, cmax,
          area * static_cast<std::int64_t>(rows - 1) - rsum, csum};
}

FeatureKey untranspose(const FeatureKey& k) {
  const auto [area, rmin, cmin, rmax, cmax, rsum, csum] = k;
  return {area, cmin, rmin, cmax, rmax, csum, rsum};
}

template <class UnmapFn>
std::vector<FeatureKey> mapped_back(const analysis::ComponentStats& s,
                                    UnmapFn&& unmap) {
  std::vector<FeatureKey> keys;
  keys.reserve(s.components.size());
  for (const auto& c : s.components) keys.push_back(unmap(key_of(c)));
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- Harness ----------------------------------------------------------------

std::string dump_case(const AlgorithmInfo& info, const BinaryImage& image,
                      Connectivity connectivity, const std::string& source) {
  std::ostringstream os;
  os << info.name << " on " << source << ", " << to_string(connectivity)
     << " (set PAREMSP_TEST_SEED to replay a randomized case)\n";
  if (image.size() > 0 && image.rows() <= 48 && image.cols() <= 80) {
    os << to_ascii(image);
  }
  return os.str();
}

/// All four metamorphic relations for one algorithm on one image.
void check_invariants(const AlgorithmInfo& info, const BinaryImage& image,
                      Connectivity connectivity, const std::string& source) {
  LabelerOptions options;
  options.connectivity = connectivity;
  if (!info.supports(connectivity)) return;
  const auto labeler = make_labeler(info.id, options);
  const std::string why = dump_case(info, image, connectivity, source);

  const LabelingWithStats base = labeler->label_with_stats(image);
  const std::vector<FeatureKey> expected = sorted_features(base.stats);

  // Horizontal flip: same components, columns reflected.
  {
    const auto flipped = labeler->label_with_stats(hflip(image));
    EXPECT_EQ(mapped_back(flipped.stats,
                          [&](const FeatureKey& k) {
                            return unflip_h(k, image.cols());
                          }),
              expected)
        << "horizontal-flip invariance broken: " << why;
  }

  // Vertical flip: rows reflected.
  {
    const auto flipped = labeler->label_with_stats(vflip(image));
    EXPECT_EQ(mapped_back(flipped.stats,
                          [&](const FeatureKey& k) {
                            return unflip_v(k, image.rows());
                          }),
              expected)
        << "vertical-flip invariance broken: " << why;
  }

  // Transpose: rows and columns exchange roles (8- and 4-connectivity are
  // both symmetric under it).
  {
    const auto t = labeler->label_with_stats(transpose(image));
    EXPECT_EQ(mapped_back(t.stats,
                          [](const FeatureKey& k) { return untranspose(k); }),
              expected)
        << "transpose invariance broken: " << why;
  }

  // Label permutation: shuffling the final label values (a relabeling of
  // the OUTPUT) must not change the feature multiset.
  if (base.labeling.num_components > 1) {
    const Label k = base.labeling.num_components;
    std::vector<Label> perm(static_cast<std::size_t>(k) + 1);
    std::iota(perm.begin(), perm.end(), Label{0});
    Xoshiro256 rng(0x9e3779b97f4a7c15ULL ^
                   static_cast<std::uint64_t>(image.size()));
    for (std::size_t i = perm.size() - 1; i > 1; --i) {
      const std::size_t j = 1 + static_cast<std::size_t>(rng() % i);
      std::swap(perm[i], perm[j]);
    }
    LabelImage permuted = base.labeling.labels;
    for (Label& l : permuted.pixels()) l = perm[static_cast<std::size_t>(l)];
    const auto permuted_stats = analysis::compute_stats(permuted, k);
    EXPECT_EQ(sorted_features(permuted_stats), expected)
        << "label-permutation invariance broken: " << why;
  }
}

void check_all_algorithms(const BinaryImage& image,
                          const std::string& source) {
  for (const Connectivity connectivity :
       {Connectivity::Eight, Connectivity::Four}) {
    for (const AlgorithmInfo& info : algorithm_catalog()) {
      check_invariants(info, image, connectivity, source);
    }
  }
}

TEST(Metamorphic, RandomizedGeneratorMatrix) {
  // The density sweep of the differential suite, reduced to the shapes
  // where flips/transposes exercise distinct row/column handling. Base
  // seed overridable for verbatim replay of CI failures.
  const std::uint64_t base_seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  const std::vector<std::pair<Coord, Coord>> shapes = {
      {1, 17}, {2, 2}, {7, 5}, {9, 16}, {13, 23},
  };
  const double densities[] = {0.1, 0.35, 0.6, 0.9};
  std::uint64_t seed = base_seed;
  for (const auto& [rows, cols] : shapes) {
    for (const double density : densities) {
      ++seed;
      std::ostringstream source;
      source << "gen::uniform_noise(" << rows << ", " << cols << ", "
             << density << ", " << seed << "ULL)";
      check_all_algorithms(gen::uniform_noise(rows, cols, density, seed),
                           source.str());
    }
  }
}

TEST(Metamorphic, StructuredPatterns) {
  // Asymmetric structured inputs: flips genuinely move pixels (a symmetric
  // input would make the relations vacuous), corner contacts and seam
  // snakes stress the union paths.
  check_all_algorithms(gen::spiral(18, 26, 1, 2), "gen::spiral(18,26,1,2)");
  check_all_algorithms(gen::text_banner("Fq", 2, 1),
                       "gen::text_banner(\"Fq\",2,1)");
  check_all_algorithms(gen::random_rectangles(21, 17, 7, 2, 6, 11),
                       "gen::random_rectangles(21,17,7,2,6,11)");
  check_all_algorithms(gen::diagonal_stripes(14, 22, 4, 2),
                       "gen::diagonal_stripes(14,22,4,2)");
}

TEST(Metamorphic, DegenerateShapes) {
  check_all_algorithms(BinaryImage(), "BinaryImage()");
  check_all_algorithms(BinaryImage(1, 1, 1), "BinaryImage(1,1,1)");
  check_all_algorithms(BinaryImage(5, 7, 1), "BinaryImage(5,7,1)");
  const std::uint64_t base_seed = env_uint64("PAREMSP_TEST_SEED", 0xfea7);
  check_all_algorithms(gen::uniform_noise(1, 31, 0.5, base_seed + 100),
                       "gen::uniform_noise(1,31,0.5,seed+100)");
  check_all_algorithms(gen::uniform_noise(29, 1, 0.5, base_seed + 101),
                       "gen::uniform_noise(29,1,0.5,seed+101)");
}

}  // namespace
}  // namespace paremsp
