// PAREMSP-specific tests: thread-count invariance (bit-identical output),
// merge-backend equivalence, chunk-boundary adversaries, and configuration
// validation. These are the properties §IV of the paper depends on.
#include <gtest/gtest.h>

#include <string>

#include "analysis/validation.hpp"
#include "core/aremsp.hpp"
#include "core/paremsp.hpp"
#include "core/paremsp_tiled.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"
#include "fixtures.hpp"

namespace paremsp {
namespace {

ParemspLabeler with(int threads,
                    MergeBackend backend = MergeBackend::LockedRem,
                    int lock_bits = 12) {
  return ParemspLabeler(ParemspConfig{threads, backend, lock_bits});
}

// --- Bit-identical output across thread counts ---------------------------------

class ParemspThreads : public ::testing::TestWithParam<int> {};

TEST_P(ParemspThreads, MatchesSequentialAremspExactly) {
  const int threads = GetParam();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto image = gen::landcover_like(75, 61, seed);
    const auto seq = AremspLabeler().label(image);
    const auto par = with(threads).label(image);
    EXPECT_EQ(par.num_components, seq.num_components) << "seed " << seed;
    EXPECT_EQ(par.labels, seq.labels) << "seed " << seed;
  }
}

TEST_P(ParemspThreads, AllWorkloadShapes) {
  const int threads = GetParam();
  const AremspLabeler seq;
  const auto check = [&](const BinaryImage& image, const std::string& what) {
    SCOPED_TRACE(what);
    const auto expected = seq.label(image);
    const auto got = with(threads).label(image);
    EXPECT_EQ(got.labels, expected.labels);
    EXPECT_EQ(got.num_components, expected.num_components);
    const auto v = analysis::validate_labeling(image, got.labels,
                                               got.num_components);
    EXPECT_TRUE(v.ok) << v.error;
  };
  check(gen::uniform_noise(64, 64, 0.5, 1), "noise");
  check(gen::spiral(64, 64, 2, 3), "spiral");
  check(gen::checkerboard(63, 65, 1), "checkerboard");
  check(gen::maze(63, 65, 9), "maze");
  check(gen::stripes(64, 64, 2, 1, false), "hstripes-period2");
  check(gen::stripes(64, 64, 2, 1, true), "vstripes-period2");
  check(BinaryImage(64, 64, 1), "all fg");
  check(BinaryImage(64, 64, 0), "all bg");
}

TEST_P(ParemspThreads, OddAndTinyRowCounts) {
  const int threads = GetParam();
  const AremspLabeler seq;
  for (const Coord rows : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17}) {
    const auto image =
        gen::uniform_noise(rows, 33, 0.5, static_cast<std::uint64_t>(rows));
    SCOPED_TRACE("rows=" + std::to_string(rows));
    EXPECT_EQ(with(threads).label(image).labels, seq.label(image).labels);
  }
}

TEST_P(ParemspThreads, FixturesMatchSequential) {
  const int threads = GetParam();
  const AremspLabeler seq;
  for (const auto& fx : testing::fixtures()) {
    SCOPED_TRACE(fx.name);
    const auto got = with(threads).label(fx.image);
    EXPECT_EQ(got.labels, seq.label(fx.image).labels);
    EXPECT_EQ(got.num_components, fx.components8);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParemspThreads,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13),
                         [](const auto& pinfo) {
                           return "t" + std::to_string(pinfo.param);
                         });

// --- Merge backends --------------------------------------------------------------

class ParemspBackend : public ::testing::TestWithParam<MergeBackend> {};

TEST_P(ParemspBackend, AgreesWithSequentialOnStressImages) {
  const MergeBackend backend = GetParam();
  const AremspLabeler seq;
  // Comb teeth cross every boundary: maximum merge traffic.
  for (const int threads : {2, 4, 8}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto image = gen::landcover_like(96, 48, seed, 2);
      SCOPED_TRACE("threads=" + std::to_string(threads) + " seed=" +
                   std::to_string(seed));
      EXPECT_EQ(with(threads, backend).label(image).labels,
                seq.label(image).labels);
    }
    const auto comb = gen::stripes(96, 48, 2, 1, /*vertical=*/true);
    EXPECT_EQ(with(threads, backend).label(comb).labels,
              seq.label(comb).labels);
  }
}

TEST_P(ParemspBackend, TinyLockPoolStillCorrect) {
  // One-lock pool (bits=0) serializes every root update but must stay
  // correct — catches accidental lock-identity assumptions.
  const auto image = gen::uniform_noise(80, 40, 0.55, 12);
  const auto seq = AremspLabeler().label(image);
  const auto got = with(8, GetParam(), /*lock_bits=*/0).label(image);
  EXPECT_EQ(got.labels, seq.labels);
}

INSTANTIATE_TEST_SUITE_P(Backends, ParemspBackend,
                         ::testing::Values(MergeBackend::LockedRem,
                                           MergeBackend::CasRem,
                                           MergeBackend::Sequential),
                         [](const auto& pinfo) {
                           return std::string(to_string(pinfo.param));
                         });

// --- CAS find × splice policy matrix ----------------------------------------
//
// Every combination must leave the CasRem merger bit-identical to
// sequential AREMSP — the policies only change which compression hints
// are written, never which component minimum survives as root
// (DESIGN.md §11). Checked on the row-banded and the 2-D tiled labeler.

class ParemspCasPolicy
    : public ::testing::TestWithParam<std::pair<uf::CasFind, uf::CasSplice>> {
};

TEST_P(ParemspCasPolicy, BandedLabelerBitIdenticalToSequential) {
  const auto [find, splice] = GetParam();
  const AremspLabeler seq;
  for (const int threads : {2, 4, 8}) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto image = gen::landcover_like(96, 48, seed, 2);
      SCOPED_TRACE("threads=" + std::to_string(threads) + " seed=" +
                   std::to_string(seed));
      const ParemspLabeler par(ParemspConfig{.threads = threads,
                                             .merge_backend =
                                                 MergeBackend::CasRem,
                                             .cas_find = find,
                                             .cas_splice = splice});
      EXPECT_EQ(par.label(image).labels, seq.label(image).labels);
    }
  }
}

TEST_P(ParemspCasPolicy, TiledLabelerBitIdenticalToSequential) {
  const auto [find, splice] = GetParam();
  const AremspLabeler seq;
  // Small tiles maximize seam-merge traffic through the policy under test.
  const auto image = gen::uniform_noise(96, 96, 0.55, 77);
  const TiledParemspLabeler tiled(
      TiledParemspConfig{.threads = 4,
                         .tile_rows = 16,
                         .tile_cols = 16,
                         .merge_backend = MergeBackend::CasRem,
                         .cas_find = find,
                         .cas_splice = splice});
  EXPECT_EQ(tiled.label(image).labels, seq.label(image).labels);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ParemspCasPolicy,
    ::testing::Values(
        std::pair{uf::CasFind::Naive, uf::CasSplice::Atomic},
        std::pair{uf::CasFind::Naive, uf::CasSplice::Simple},
        std::pair{uf::CasFind::Split, uf::CasSplice::Atomic},
        std::pair{uf::CasFind::Split, uf::CasSplice::Simple},
        std::pair{uf::CasFind::Halve, uf::CasSplice::Atomic},
        std::pair{uf::CasFind::Halve, uf::CasSplice::Simple}),
    [](const auto& pinfo) {
      return std::string(uf::to_string(pinfo.param.first)) + "_" +
             uf::to_string(pinfo.param.second);
    });

// --- Chunk-boundary adversaries ----------------------------------------------------

TEST(ParemspBoundaries, ComponentsSpanningEveryBoundary) {
  // Vertical bars: every component crosses every chunk boundary; plus a
  // U-shape that is split into two chunk-local components and re-merged.
  const auto bars = gen::stripes(64, 32, 3, 1, /*vertical=*/true);
  const auto seq = AremspLabeler().label(bars);
  for (const int threads : {2, 3, 4, 6, 8, 16, 32}) {
    EXPECT_EQ(with(threads).label(bars).labels, seq.labels)
        << "threads=" << threads;
  }
}

TEST(ParemspBoundaries, ArchRejoinsAcrossChunks) {
  // 40 rows tall arch: legs meet only in the top rows; with >= 2 chunks
  // the legs are separate provisional components inside lower chunks.
  BinaryImage arch(40, 20, 0);
  for (Coord c = 0; c < 20; ++c) arch(0, c) = 1;
  for (Coord r = 0; r < 40; ++r) {
    arch(r, 0) = 1;
    arch(r, 19) = 1;
  }
  const auto seq = AremspLabeler().label(arch);
  ASSERT_EQ(seq.num_components, 1);
  for (const int threads : {2, 4, 8}) {
    const auto got = with(threads).label(arch);
    EXPECT_EQ(got.num_components, 1) << "threads=" << threads;
    EXPECT_EQ(got.labels, seq.labels);
  }
}

TEST(ParemspBoundaries, DiagonalOnlyBoundaryContacts) {
  // Diagonal line: consecutive pixels touch only corner-to-corner, so each
  // boundary merge comes from the a/c neighbors, not b.
  BinaryImage diag(48, 48, 0);
  for (Coord i = 0; i < 48; ++i) diag(i, i) = 1;
  for (const int threads : {2, 4, 8}) {
    const auto got = with(threads).label(diag);
    EXPECT_EQ(got.num_components, 1) << "threads=" << threads;
  }
  // Anti-diagonal exercises the c-neighbor (col+1) merge path.
  BinaryImage anti(48, 48, 0);
  for (Coord i = 0; i < 48; ++i) anti(i, 47 - i) = 1;
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(with(threads).label(anti).num_components, 1);
  }
}

TEST(ParemspBoundaries, MoreThreadsThanRowPairs) {
  const auto image = gen::uniform_noise(6, 40, 0.5, 77);  // 3 row pairs
  const auto seq = AremspLabeler().label(image);
  for (const int threads : {4, 8, 64}) {
    EXPECT_EQ(with(threads).label(image).labels, seq.labels)
        << "threads=" << threads;
  }
}

// --- Configuration and metadata ------------------------------------------------------

TEST(ParemspConfigTest, RejectsInvalidConfig) {
  EXPECT_THROW(ParemspLabeler(ParemspConfig{-1}), PreconditionError);
  EXPECT_THROW(
      ParemspLabeler(ParemspConfig{2, MergeBackend::LockedRem, 30}),
      PreconditionError);
  EXPECT_THROW(
      ParemspLabeler(ParemspConfig{2, MergeBackend::LockedRem, -1}),
      PreconditionError);
}

TEST(ParemspConfigTest, ReportsIdentity) {
  const ParemspLabeler labeler(ParemspConfig{4});
  EXPECT_EQ(labeler.name(), "paremsp");
  EXPECT_TRUE(labeler.is_parallel());
  EXPECT_EQ(labeler.config().threads, 4);
}

TEST(ParemspTimings, MergePhaseOnlyWhenMultipleChunks) {
  const auto image = gen::landcover_like(128, 64, 5);
  const auto one = with(1).label(image);
  const auto four = with(4).label(image);
  EXPECT_EQ(one.labels, four.labels);
  EXPECT_GE(four.timings.merge_ms, 0.0);
  EXPECT_GT(four.timings.total_ms, 0.0);
}

}  // namespace
}  // namespace paremsp
