// Tests for the analysis module: component statistics, labeling
// equivalence, canonical relabeling, and the structural validator itself
// (the validator must catch every class of broken labeling, since the rest
// of the suite trusts it).
#include <gtest/gtest.h>

#include "analysis/component_stats.hpp"
#include "analysis/equivalence.hpp"
#include "analysis/validation.hpp"
#include "baselines/flood_fill.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"

namespace paremsp::analysis {
namespace {

LabelingResult labeled(const BinaryImage& img) {
  return FloodFillLabeler().label(img);
}

// --- Component stats -----------------------------------------------------------

TEST(ComponentStats, MeasuresAreasBoxesCentroids) {
  const BinaryImage img = binary_from_ascii(
      R"(
##...
##...
....#)");
  const auto res = labeled(img);
  ASSERT_EQ(res.num_components, 2);
  const ComponentStats stats = compute_stats(res.labels, res.num_components);
  ASSERT_EQ(stats.count(), 2);

  const ComponentInfo& square = stats.components[0];
  EXPECT_EQ(square.area, 4);
  EXPECT_EQ(square.bbox, (BoundingBox{0, 0, 1, 1}));
  EXPECT_DOUBLE_EQ(square.centroid_row, 0.5);
  EXPECT_DOUBLE_EQ(square.centroid_col, 0.5);

  const ComponentInfo& dot = stats.components[1];
  EXPECT_EQ(dot.area, 1);
  EXPECT_EQ(dot.bbox, (BoundingBox{2, 4, 2, 4}));
  EXPECT_EQ(stats.total_foreground(), 5);
  EXPECT_EQ(stats.largest_area(), 4);
  EXPECT_DOUBLE_EQ(stats.mean_area(), 2.5);
}

TEST(ComponentStats, EmptyLabeling) {
  const ComponentStats stats = compute_stats(LabelImage(4, 4), 0);
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.total_foreground(), 0);
  EXPECT_EQ(stats.largest_area(), 0);
  EXPECT_DOUBLE_EQ(stats.mean_area(), 0.0);
}

TEST(ComponentStats, RejectsOutOfRangeLabels) {
  LabelImage labels(1, 2);
  labels(0, 0) = 3;
  EXPECT_THROW(compute_stats(labels, 2), PreconditionError);
}

TEST(ComponentStats, RejectsEmptyClaimedComponent) {
  LabelImage labels(1, 2);
  labels(0, 0) = 1;  // label 2 claimed but absent
  EXPECT_THROW(compute_stats(labels, 2), PreconditionError);
}

TEST(AreaHistogram, PowerOfTwoBins) {
  const BinaryImage img = binary_from_ascii(
      R"(
#.##.####
.........)");
  const auto res = labeled(img);
  const auto hist = area_histogram(compute_stats(res.labels,
                                                 res.num_components));
  // Areas: 1, 2, 4 -> bins [1,2), [2,4), [4,8).
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 1);
}

// --- Equivalence / canonicalization ----------------------------------------------

TEST(Equivalence, DetectsIdenticalAndPermuted) {
  const BinaryImage img = gen::uniform_noise(24, 24, 0.45, 3);
  const auto a = labeled(img);
  // Permute labels: swap 1 <-> 2 everywhere.
  LabelImage permuted = a.labels;
  for (Label& l : permuted.pixels()) {
    if (l == 1) l = 2;
    else if (l == 2) l = 1;
  }
  EXPECT_TRUE(equivalent_labelings(a.labels, a.labels));
  EXPECT_TRUE(equivalent_labelings(a.labels, permuted));
}

TEST(Equivalence, RejectsMergedAndSplitComponents) {
  const BinaryImage img = binary_from_ascii("#.#");
  const auto a = labeled(img);  // labels 1 and 2

  LabelImage merged = a.labels;
  for (Label& l : merged.pixels()) {
    if (l == 2) l = 1;
  }
  EXPECT_FALSE(equivalent_labelings(a.labels, merged));
  EXPECT_FALSE(equivalent_labelings(merged, a.labels));
}

TEST(Equivalence, RejectsBackgroundMismatch) {
  const BinaryImage img = binary_from_ascii("##");
  const auto a = labeled(img);
  LabelImage other = a.labels;
  other(0, 1) = 0;
  EXPECT_FALSE(equivalent_labelings(a.labels, other));
}

TEST(Equivalence, RejectsDimensionMismatch) {
  EXPECT_FALSE(equivalent_labelings(LabelImage(2, 2), LabelImage(2, 3)));
}

TEST(CanonicalRelabel, ProducesRasterFirstOrder) {
  LabelImage labels(2, 3);
  labels(0, 0) = 7;
  labels(0, 2) = 3;
  labels(1, 1) = 7;
  const Label n = canonical_relabel(labels);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(labels(0, 0), 1);
  EXPECT_EQ(labels(0, 2), 2);
  EXPECT_EQ(labels(1, 1), 1);
}

TEST(CanonicalRelabel, EquivalentLabelingsBecomeEqual) {
  const BinaryImage img = gen::misc_like(32, 32, 6);
  auto a = labeled(img);
  LabelImage shuffled = a.labels;
  for (Label& l : shuffled.pixels()) {
    if (l != 0) l = l * 17 + 3;  // injective remap
  }
  canonical_relabel(shuffled);
  canonical_relabel(a.labels);
  EXPECT_EQ(shuffled, a.labels);
}

// --- Validator ---------------------------------------------------------------------

TEST(Validate, AcceptsOracleOutput) {
  const BinaryImage img = gen::landcover_like(48, 48, 9);
  const auto res = labeled(img);
  const auto v = validate_labeling(img, res.labels, res.num_components);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(static_cast<bool>(v));
}

TEST(Validate, CatchesDimensionMismatch) {
  const BinaryImage img(4, 4);
  EXPECT_FALSE(validate_labeling(img, LabelImage(4, 5), 0).ok);
}

TEST(Validate, CatchesLabeledBackground) {
  const BinaryImage img = binary_from_ascii("#.");
  auto res = labeled(img);
  res.labels(0, 1) = 1;
  const auto v = validate_labeling(img, res.labels, res.num_components);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("background"), std::string::npos);
}

TEST(Validate, CatchesUnlabeledForeground) {
  const BinaryImage img = binary_from_ascii("##");
  auto res = labeled(img);
  res.labels(0, 1) = 0;
  EXPECT_FALSE(validate_labeling(img, res.labels, res.num_components).ok);
}

TEST(Validate, CatchesNonConsecutiveLabels) {
  const BinaryImage img = binary_from_ascii("#.#");
  auto res = labeled(img);  // labels 1, 2
  for (Label& l : res.labels.pixels()) {
    if (l == 2) l = 3;
  }
  const auto v = validate_labeling(img, res.labels, 3);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("unused"), std::string::npos);
}

TEST(Validate, CatchesSplitComponent) {
  const BinaryImage img = binary_from_ascii("###");
  auto res = labeled(img);
  res.labels(0, 2) = 2;  // break one run into two labels
  const auto v = validate_labeling(img, res.labels, 2);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("adjacent"), std::string::npos);
}

TEST(Validate, CatchesMergedComponents) {
  const BinaryImage img = binary_from_ascii("#.#");
  auto res = labeled(img);
  for (Label& l : res.labels.pixels()) {
    if (l == 2) l = 1;  // one label spans two components
  }
  const auto v = validate_labeling(img, res.labels, 1);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("more than one"), std::string::npos);
}

TEST(Validate, FourConnectivityTreatsDiagonalAsSeparate) {
  const BinaryImage img = binary_from_ascii(
      R"(
#.
.#)");
  // Under 4-connectivity this is two components.
  const auto res4 = FloodFillLabeler(Connectivity::Four).label(img);
  EXPECT_TRUE(
      validate_labeling(img, res4.labels, res4.num_components,
                        Connectivity::Four)
          .ok);
  // The 8-connectivity labeling (one component) must fail a 4-conn check
  // ... actually a single label spanning diagonal pixels is *not*
  // 4-connected, so the validator flags it.
  const auto res8 = FloodFillLabeler(Connectivity::Eight).label(img);
  EXPECT_FALSE(
      validate_labeling(img, res8.labels, res8.num_components,
                        Connectivity::Four)
          .ok);
}

TEST(Validate, EmptyImageIsValid) {
  EXPECT_TRUE(validate_labeling(BinaryImage(), LabelImage(), 0).ok);
  EXPECT_FALSE(validate_labeling(BinaryImage(), LabelImage(), -1).ok);
}

}  // namespace
}  // namespace paremsp::analysis
