// Tests for the analysis module: component statistics, labeling
// equivalence, canonical relabeling, and the structural validator itself
// (the validator must catch every class of broken labeling, since the rest
// of the suite trusts it).
#include <gtest/gtest.h>

#include "analysis/component_stats.hpp"
#include "analysis/equivalence.hpp"
#include "analysis/feature_accumulator.hpp"
#include "analysis/validation.hpp"
#include "baselines/flood_fill.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"

namespace paremsp::analysis {
namespace {

LabelingResult labeled(const BinaryImage& img) {
  return FloodFillLabeler().label(img);
}

// --- Component stats -----------------------------------------------------------

TEST(ComponentStats, CarriesExactCentroidSums) {
  const BinaryImage img = binary_from_ascii(
      R"(
.#.
###)");
  const auto res = labeled(img);
  ASSERT_EQ(res.num_components, 1);
  const ComponentStats stats = compute_stats(res.labels, res.num_components);
  const ComponentInfo& c = stats.components[0];
  EXPECT_EQ(c.area, 4);
  EXPECT_EQ(c.row_sum, 0 + 1 + 1 + 1);
  EXPECT_EQ(c.col_sum, 1 + 0 + 1 + 2);
  // Centroids must be derived from the sums, bit for bit.
  EXPECT_EQ(c.centroid_row, static_cast<double>(c.row_sum) / 4.0);
  EXPECT_EQ(c.centroid_col, static_cast<double>(c.col_sum) / 4.0);
}

// --- FeatureCell algebra -----------------------------------------------------

TEST(FeatureCell, AccumulatesAndMergesCommutatively) {
  FeatureCell a;
  a.add_pixel(2, 3);
  a.add_pixel(2, 4);
  FeatureCell b;
  b.add_pixel(5, 1);

  FeatureCell ab = a;
  ab.merge(b);
  FeatureCell ba = b;
  ba.merge(a);
  for (const FeatureCell& m : {ab, ba}) {
    EXPECT_EQ(m.area, 3);
    EXPECT_EQ(m.row_min, 2);
    EXPECT_EQ(m.row_max, 5);
    EXPECT_EQ(m.col_min, 1);
    EXPECT_EQ(m.col_max, 4);
    EXPECT_EQ(m.row_sum, 9);
    EXPECT_EQ(m.col_sum, 8);
  }

  // The empty cell is the identity on both sides.
  FeatureCell empty;
  FeatureCell left = a;
  left.merge(empty);
  EXPECT_EQ(left.area, a.area);
  EXPECT_EQ(left.row_sum, a.row_sum);
  FeatureCell right = empty;
  right.merge(a);
  EXPECT_EQ(right.area, a.area);
  EXPECT_EQ(right.col_max, a.col_max);
}

TEST(FeatureCell, FoldAndFinalizeMatchComputeStats) {
  // Three provisional labels resolving to two components: 1,3 -> 1; 2 -> 2.
  std::vector<FeatureCell> cells(4);
  FeatureAccumulator acc(cells);
  acc.fresh(1);
  acc.add(1, 0, 0);
  acc.add(1, 0, 1);
  acc.fresh(2);
  acc.add(2, 4, 4);
  acc.fresh(3);
  acc.add(3, 1, 1);
  const std::vector<Label> final_of = {0, 1, 2, 1};

  std::vector<ComponentInfo> components(2);
  fold_features(cells, final_of, 1, 3, components);
  finalize_components(components);

  EXPECT_EQ(components[0].label, 1);
  EXPECT_EQ(components[0].area, 3);
  EXPECT_EQ(components[0].bbox, (BoundingBox{0, 0, 1, 1}));
  EXPECT_EQ(components[0].row_sum, 1);
  EXPECT_EQ(components[0].col_sum, 2);
  EXPECT_DOUBLE_EQ(components[0].centroid_row, 1.0 / 3.0);
  EXPECT_EQ(components[1].area, 1);
  EXPECT_EQ(components[1].bbox, (BoundingBox{4, 4, 4, 4}));
}

TEST(FeatureCell, FinalizeRejectsEmptyComponent) {
  std::vector<ComponentInfo> components(1);  // claims a pixel-less component
  EXPECT_THROW(finalize_components(components), PreconditionError);
}

TEST(ComponentStats, MeasuresAreasBoxesCentroids) {
  const BinaryImage img = binary_from_ascii(
      R"(
##...
##...
....#)");
  const auto res = labeled(img);
  ASSERT_EQ(res.num_components, 2);
  const ComponentStats stats = compute_stats(res.labels, res.num_components);
  ASSERT_EQ(stats.count(), 2);

  const ComponentInfo& square = stats.components[0];
  EXPECT_EQ(square.area, 4);
  EXPECT_EQ(square.bbox, (BoundingBox{0, 0, 1, 1}));
  EXPECT_DOUBLE_EQ(square.centroid_row, 0.5);
  EXPECT_DOUBLE_EQ(square.centroid_col, 0.5);

  const ComponentInfo& dot = stats.components[1];
  EXPECT_EQ(dot.area, 1);
  EXPECT_EQ(dot.bbox, (BoundingBox{2, 4, 2, 4}));
  EXPECT_EQ(stats.total_foreground(), 5);
  EXPECT_EQ(stats.largest_area(), 4);
  EXPECT_DOUBLE_EQ(stats.mean_area(), 2.5);
}

TEST(ComponentStats, EmptyLabeling) {
  const ComponentStats stats = compute_stats(LabelImage(4, 4), 0);
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.total_foreground(), 0);
  EXPECT_EQ(stats.largest_area(), 0);
  EXPECT_DOUBLE_EQ(stats.mean_area(), 0.0);
}

TEST(ComponentStats, RejectsOutOfRangeLabels) {
  LabelImage labels(1, 2);
  labels(0, 0) = 3;
  EXPECT_THROW(compute_stats(labels, 2), PreconditionError);
}

TEST(ComponentStats, RejectsEmptyClaimedComponent) {
  LabelImage labels(1, 2);
  labels(0, 0) = 1;  // label 2 claimed but absent
  EXPECT_THROW(compute_stats(labels, 2), PreconditionError);
}

TEST(AreaHistogram, PowerOfTwoBins) {
  const BinaryImage img = binary_from_ascii(
      R"(
#.##.####
.........)");
  const auto res = labeled(img);
  const auto hist = area_histogram(compute_stats(res.labels,
                                                 res.num_components));
  // Areas: 1, 2, 4 -> bins [1,2), [2,4), [4,8).
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[2], 1);
}

// --- Equivalence / canonicalization ----------------------------------------------

TEST(Equivalence, DetectsIdenticalAndPermuted) {
  const BinaryImage img = gen::uniform_noise(24, 24, 0.45, 3);
  const auto a = labeled(img);
  // Permute labels: swap 1 <-> 2 everywhere.
  LabelImage permuted = a.labels;
  for (Label& l : permuted.pixels()) {
    if (l == 1) l = 2;
    else if (l == 2) l = 1;
  }
  EXPECT_TRUE(equivalent_labelings(a.labels, a.labels));
  EXPECT_TRUE(equivalent_labelings(a.labels, permuted));
}

TEST(Equivalence, RejectsMergedAndSplitComponents) {
  const BinaryImage img = binary_from_ascii("#.#");
  const auto a = labeled(img);  // labels 1 and 2

  LabelImage merged = a.labels;
  for (Label& l : merged.pixels()) {
    if (l == 2) l = 1;
  }
  EXPECT_FALSE(equivalent_labelings(a.labels, merged));
  EXPECT_FALSE(equivalent_labelings(merged, a.labels));
}

TEST(Equivalence, RejectsBackgroundMismatch) {
  const BinaryImage img = binary_from_ascii("##");
  const auto a = labeled(img);
  LabelImage other = a.labels;
  other(0, 1) = 0;
  EXPECT_FALSE(equivalent_labelings(a.labels, other));
}

TEST(Equivalence, RejectsDimensionMismatch) {
  EXPECT_FALSE(equivalent_labelings(LabelImage(2, 2), LabelImage(2, 3)));
}

TEST(CanonicalRelabel, ProducesRasterFirstOrder) {
  LabelImage labels(2, 3);
  labels(0, 0) = 7;
  labels(0, 2) = 3;
  labels(1, 1) = 7;
  const Label n = canonical_relabel(labels);
  EXPECT_EQ(n, 2);
  EXPECT_EQ(labels(0, 0), 1);
  EXPECT_EQ(labels(0, 2), 2);
  EXPECT_EQ(labels(1, 1), 1);
}

TEST(CanonicalRelabel, EquivalentLabelingsBecomeEqual) {
  const BinaryImage img = gen::misc_like(32, 32, 6);
  auto a = labeled(img);
  LabelImage shuffled = a.labels;
  for (Label& l : shuffled.pixels()) {
    if (l != 0) l = l * 17 + 3;  // injective remap
  }
  canonical_relabel(shuffled);
  canonical_relabel(a.labels);
  EXPECT_EQ(shuffled, a.labels);
}

// --- Validator ---------------------------------------------------------------------

TEST(Validate, AcceptsOracleOutput) {
  const BinaryImage img = gen::landcover_like(48, 48, 9);
  const auto res = labeled(img);
  const auto v = validate_labeling(img, res.labels, res.num_components);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(static_cast<bool>(v));
}

TEST(Validate, CatchesDimensionMismatch) {
  const BinaryImage img(4, 4);
  EXPECT_FALSE(validate_labeling(img, LabelImage(4, 5), 0).ok);
}

TEST(Validate, CatchesLabeledBackground) {
  const BinaryImage img = binary_from_ascii("#.");
  auto res = labeled(img);
  res.labels(0, 1) = 1;
  const auto v = validate_labeling(img, res.labels, res.num_components);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("background"), std::string::npos);
}

TEST(Validate, CatchesUnlabeledForeground) {
  const BinaryImage img = binary_from_ascii("##");
  auto res = labeled(img);
  res.labels(0, 1) = 0;
  EXPECT_FALSE(validate_labeling(img, res.labels, res.num_components).ok);
}

TEST(Validate, CatchesNonConsecutiveLabels) {
  const BinaryImage img = binary_from_ascii("#.#");
  auto res = labeled(img);  // labels 1, 2
  for (Label& l : res.labels.pixels()) {
    if (l == 2) l = 3;
  }
  const auto v = validate_labeling(img, res.labels, 3);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("unused"), std::string::npos);
}

TEST(Validate, CatchesSplitComponent) {
  const BinaryImage img = binary_from_ascii("###");
  auto res = labeled(img);
  res.labels(0, 2) = 2;  // break one run into two labels
  const auto v = validate_labeling(img, res.labels, 2);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("adjacent"), std::string::npos);
}

TEST(Validate, CatchesMergedComponents) {
  const BinaryImage img = binary_from_ascii("#.#");
  auto res = labeled(img);
  for (Label& l : res.labels.pixels()) {
    if (l == 2) l = 1;  // one label spans two components
  }
  const auto v = validate_labeling(img, res.labels, 1);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("more than one"), std::string::npos);
}

TEST(Validate, FourConnectivityTreatsDiagonalAsSeparate) {
  const BinaryImage img = binary_from_ascii(
      R"(
#.
.#)");
  // Under 4-connectivity this is two components.
  const auto res4 = FloodFillLabeler(Connectivity::Four).label(img);
  EXPECT_TRUE(
      validate_labeling(img, res4.labels, res4.num_components,
                        Connectivity::Four)
          .ok);
  // The 8-connectivity labeling (one component) must fail a 4-conn check
  // ... actually a single label spanning diagonal pixels is *not*
  // 4-connected, so the validator flags it.
  const auto res8 = FloodFillLabeler(Connectivity::Eight).label(img);
  EXPECT_FALSE(
      validate_labeling(img, res8.labels, res8.num_components,
                        Connectivity::Four)
          .ok);
}

TEST(Validate, EmptyImageIsValid) {
  EXPECT_TRUE(validate_labeling(BinaryImage(), LabelImage(), 0).ok);
  EXPECT_FALSE(validate_labeling(BinaryImage(), LabelImage(), -1).ok);
}

}  // namespace
}  // namespace paremsp::analysis
