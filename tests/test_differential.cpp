// Randomized differential testing: every registry algorithm against the
// flood-fill oracle over a generator matrix sweeping density (0.05–0.95),
// degenerate shapes (1xN, Nx1, 1x1, empty, all-foreground/background) and
// both connectivities where supported. Labelings are compared after
// canonical (raster-first-appearance) renumbering, so algorithms with
// different-but-valid numbering schemes still diff exactly.
//
// Every assertion carries the PRNG seed and an ASCII dump of the offending
// image, so any failure is replayable as a one-liner:
//   gen::uniform_noise(rows, cols, density, seed)
// and the randomized sweeps derive their seeds from PAREMSP_TEST_SEED
// (common/env.hpp), so a CI failure replays verbatim:
//   PAREMSP_TEST_SEED=<seed> ./paremsp_tests --gtest_filter='Differential.*'
//
// Besides raw labels, every algorithm's label_with_stats output is
// cross-checked against the post-pass compute_stats oracle on the same
// plane: the fused accumulate-during-scan paths must be value-identical
// (exact integers and the centroids derived from them) on every cell of
// the matrix.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/component_stats.hpp"
#include "analysis/equivalence.hpp"
#include "analysis/validation.hpp"
#include "common/contracts.hpp"
#include "common/env.hpp"
#include "core/paremsp_tiled.hpp"
#include "core/registry.hpp"
#include "fixtures.hpp"
#include "image/ascii.hpp"
#include "image/generators.hpp"

namespace paremsp {
namespace {

using testing::expect_stats_identical;

/// Base seed for the randomized sweeps, overridable for verbatim replay.
std::uint64_t test_seed(std::uint64_t fallback) {
  return env_uint64("PAREMSP_TEST_SEED", fallback);
}

/// Replay header for a failing case: the exact generator call + the image.
std::string dump_case(const BinaryImage& image, std::uint64_t seed,
                      double density, Connectivity connectivity) {
  std::ostringstream os;
  os << "replay: gen::uniform_noise(" << image.rows() << ", " << image.cols()
     << ", " << density << ", " << seed << "ULL), "
     << to_string(connectivity) << "\n";
  if (image.size() > 0 && image.rows() <= 48 && image.cols() <= 80) {
    os << to_ascii(image);
  } else {
    os << "(image too large to dump: " << image.rows() << "x" << image.cols()
       << ")\n";
  }
  return os.str();
}

/// Diff one algorithm against the oracle on one image. Both labelings are
/// canonically renumbered first; after that they must be equal bit for bit.
void diff_against_oracle(const AlgorithmInfo& info, const BinaryImage& image,
                         Connectivity connectivity, const std::string& why) {
  LabelerOptions options;
  options.connectivity = connectivity;

  if (!info.supports(connectivity)) {
    // The uniform contract: unsupported combinations throw the registry's
    // PreconditionError from make_labeler — no aborts, no silent wrong
    // answers from a constructed labeler.
    EXPECT_THROW((void)make_labeler(info.id, options), PreconditionError)
        << info.name << " " << why;
    return;
  }

  const auto oracle =
      make_labeler(Algorithm::FloodFill, options)->label(image);
  const auto labeler = make_labeler(info.id, options);
  LabelingResult got = labeler->label(image);
  EXPECT_EQ(got.num_components, oracle.num_components)
      << info.name << " " << why;

  LabelImage canonical_got = got.labels;
  LabelImage canonical_oracle = oracle.labels;
  (void)analysis::canonical_relabel(canonical_got);
  (void)analysis::canonical_relabel(canonical_oracle);
  EXPECT_EQ(canonical_got, canonical_oracle) << info.name << " " << why;

  const auto v = analysis::validate_labeling(image, got.labels,
                                             got.num_components, connectivity);
  EXPECT_TRUE(v.ok) << info.name << " " << why << "\n" << v.error;

  // Fused stats: label_with_stats must label bit-identically to label()
  // and measure value-identically to the post-pass oracle on that plane.
  const LabelingWithStats ws = labeler->label_with_stats(image);
  EXPECT_EQ(ws.labeling.num_components, got.num_components)
      << info.name << " " << why;
  EXPECT_EQ(ws.labeling.labels, got.labels)
      << info.name << " label_with_stats diverged from label() " << why;
  expect_stats_identical(
      ws.stats,
      analysis::compute_stats(ws.labeling.labels,
                              ws.labeling.num_components),
      std::string(info.name) + " " + why);
}

/// One full sweep cell: every algorithm x both connectivities on `image`.
void diff_all(const BinaryImage& image, std::uint64_t seed, double density) {
  for (const Connectivity connectivity :
       {Connectivity::Eight, Connectivity::Four}) {
    const std::string why = dump_case(image, seed, density, connectivity);
    for (const AlgorithmInfo& info : algorithm_catalog()) {
      if (info.id == Algorithm::FloodFill) continue;  // the oracle itself
      diff_against_oracle(info, image, connectivity, why);
    }
  }
}

TEST(Differential, DensitySweepAcrossShapes) {
  const std::vector<std::pair<Coord, Coord>> shapes = {
      {1, 1}, {1, 31}, {29, 1}, {2, 2}, {5, 5}, {9, 17}, {16, 16}, {13, 40},
  };
  const double densities[] = {0.05, 0.15, 0.35, 0.5, 0.65, 0.8, 0.95};
  std::uint64_t seed = test_seed(0x5eed);
  for (const auto& [rows, cols] : shapes) {
    for (const double density : densities) {
      ++seed;
      diff_all(gen::uniform_noise(rows, cols, density, seed), seed, density);
    }
  }
}

TEST(Differential, DegenerateImages) {
  diff_all(BinaryImage(), 0, 0.0);          // 0x0
  diff_all(BinaryImage(0, 7), 0, 0.0);      // 0 rows
  diff_all(BinaryImage(7, 0), 0, 0.0);      // 0 cols
  diff_all(BinaryImage(11, 13, 1), 0, 1.0); // all foreground
  diff_all(BinaryImage(11, 13, 0), 0, 0.0); // all background
  diff_all(BinaryImage(1, 1, 1), 0, 1.0);   // single foreground pixel
}

TEST(Differential, StructuredAdversarialPatterns) {
  // Structured generators hit the cases uniform noise rarely produces:
  // corner-only contacts, long dependency chains, seam-hugging snakes.
  diff_all(gen::checkerboard(21, 27, 1), 1, 0.5);
  diff_all(gen::diagonal_stripes(24, 24, 3, 1), 2, 0.33);
  diff_all(gen::concentric_rings(25, 25, 2), 3, 0.5);
  diff_all(gen::spiral(24, 30, 1, 2), 4, 0.33);
  diff_all(gen::maze(23, 23, 99), 5, 0.6);
  diff_all(gen::random_rectangles(26, 26, 9, 2, 8, 42), 6, 0.4);
  diff_all(gen::text_banner("CCL", 2, 1), 7, 0.3);
}

TEST(Differential, RandomizedManySeeds) {
  // Volume sweep at moderate size: many independent seeds at mixed
  // densities. Failures name the exact seed for replay.
  const std::uint64_t base = test_seed(1000);
  for (std::uint64_t seed = base; seed < base + 30; ++seed) {
    const double density =
        0.05 + 0.9 * static_cast<double>(seed % 10) / 9.0;
    diff_all(gen::uniform_noise(20, 24, density, seed), seed, density);
  }
}

TEST(Differential, FusedStatsAcrossDegenerateTileGeometries) {
  // The fused tiled path must stay value-identical to the post-pass
  // oracle for EVERY grid, including 1-pixel tiles where every pixel is
  // its own scan and all adjacencies flow through seam merges — the
  // worst case for accumulator folding.
  const std::vector<std::pair<Coord, Coord>> geometries = {
      {1, 1}, {1, 3}, {3, 1}, {2, 2}, {5, 4}, {4, 16}, {16, 4},
  };
  const std::uint64_t base = test_seed(0x71e5);
  const AlgorithmInfo& info = algorithm_info(Algorithm::ParemspTiled);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::uint64_t seed = base + i;
    const double density = 0.15 + 0.7 * static_cast<double>(i) / 5.0;
    const BinaryImage image = gen::uniform_noise(13, 19, density, seed);
    const std::string why = dump_case(image, seed, density,
                                      Connectivity::Eight);
    const auto reference =
        make_labeler(Algorithm::Aremsp)->label_with_stats(image);
    for (const auto& [tr, tc] : geometries) {
      const TiledParemspLabeler tiled(
          TiledParemspConfig{.tile_rows = tr, .tile_cols = tc});
      const LabelingWithStats ws = tiled.label_with_stats(image);
      // Tiled output is bit-identical to AREMSP, so the stats must match
      // the reference's component for component, not only as a multiset.
      const std::string context = std::string(info.name) + " tiles " +
                                  std::to_string(tr) + "x" +
                                  std::to_string(tc) + " " + why;
      EXPECT_EQ(ws.labeling.labels, reference.labeling.labels) << context;
      expect_stats_identical(ws.stats, reference.stats, context);
      expect_stats_identical(
          ws.stats,
          analysis::compute_stats(ws.labeling.labels,
                                  ws.labeling.num_components),
          context);
    }
  }
}

}  // namespace
}  // namespace paremsp
