// Runtime SIMD dispatch for the row-packing kernels (image/row_bits.hpp):
// the detected tier must agree with an INDEPENDENT CPUID probe (raw
// __get_cpuid_count, not the __builtin_cpu_supports the dispatcher uses),
// the PAREMSP_SIMD override may only lower the tier, and requesting a
// tier above the hardware clamps to the detected table instead of handing
// out kernels that would fault.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "image/row_bits.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define PAREMSP_TEST_X86 1
#endif

namespace paremsp {
namespace {

#ifdef PAREMSP_TEST_X86

/// Independent AVX2 probe: CPUID leaf 7 subleaf 0 EBX bit 5, gated on the
/// OS actually saving the YMM state (OSXSAVE + XGETBV XCR0 bits 1..2) —
/// the full check the dispatcher's __builtin_cpu_supports("avx2") does
/// internally, reproduced from the raw instructions.
bool cpuid_has_avx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  if (!osxsave) return false;
  std::uint32_t xcr0_lo = 0, xcr0_hi = 0;
  __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  if ((xcr0_lo & 0x6u) != 0x6u) return false;  // XMM + YMM state enabled
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;
}

/// Independent SSE2 probe: CPUID leaf 1 EDX bit 26 (architecturally
/// guaranteed on x86-64, so this doubles as a sanity check of the probe).
bool cpuid_has_sse2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 26)) != 0;
}

TEST(SimdDispatch, DetectedTierMatchesRawCpuid) {
  if (cpuid_has_avx2()) {
    EXPECT_EQ(detected_simd_tier(), SimdTier::Avx2);
  } else if (cpuid_has_sse2()) {
    EXPECT_EQ(detected_simd_tier(), SimdTier::Sse2);
  } else {
    EXPECT_EQ(detected_simd_tier(), SimdTier::Scalar);
  }
}

#else  // non-x86: the only tier is the portable scalar fallback.

TEST(SimdDispatch, DetectedTierIsScalarOffX86) {
  EXPECT_EQ(detected_simd_tier(), SimdTier::Scalar);
}

#endif  // PAREMSP_TEST_X86

TEST(SimdDispatch, ActiveTierNeverExceedsDetected) {
  // The PAREMSP_SIMD override (read once at startup) can only clamp
  // DOWNWARD; whatever this process inherited, active <= detected holds.
  EXPECT_LE(static_cast<int>(active_simd_tier()),
            static_cast<int>(detected_simd_tier()));
  // And when an override is set, it is honored exactly (modulo the
  // hardware clamp) — lets CI legs pin PAREMSP_SIMD=scalar/sse2 and have
  // this test verify the pin took effect.
  if (const char* env = std::getenv("PAREMSP_SIMD");
      env != nullptr && *env != '\0') {
    const std::string want(env);
    if (want == "scalar") {
      EXPECT_EQ(active_simd_tier(), SimdTier::Scalar);
    } else if (want == "sse2" &&
               detected_simd_tier() >= SimdTier::Sse2) {
      EXPECT_EQ(active_simd_tier(), SimdTier::Sse2);
    }
  }
}

TEST(SimdDispatch, RequestingAboveDetectedClampsToDetectedTable) {
  // Asking for a tier the host lacks must return the detected tier's
  // table (same object), never kernels that would execute unsupported
  // instructions.
  const PackKernels& detected = pack_kernels(detected_simd_tier());
  EXPECT_EQ(&pack_kernels(SimdTier::Avx2) == &detected,
            true);  // Avx2 is the top tier: always clamps to detected
  if (detected_simd_tier() == SimdTier::Scalar) {
    EXPECT_EQ(&pack_kernels(SimdTier::Sse2), &detected);
  }
  // The default table is the active tier's table.
  EXPECT_EQ(&pack_kernels(), &pack_kernels(active_simd_tier()));
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  EXPECT_STREQ(to_string(SimdTier::Scalar), "scalar");
  EXPECT_STREQ(to_string(SimdTier::Sse2), "sse2");
  EXPECT_STREQ(to_string(SimdTier::Avx2), "avx2");
}

}  // namespace
}  // namespace paremsp
