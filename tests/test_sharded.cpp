// Sharded huge-image labeling through the engine: bit-identical
// equivalence with sequential AREMSP across tile geometries and worker
// counts, async pipelining, shutdown-mid-shard, and degenerate inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/component_stats.hpp"
#include "analysis/validation.hpp"
#include "common/contracts.hpp"
#include "core/aremsp.hpp"
#include "engine/engine.hpp"
#include "fixtures.hpp"
#include "image/generators.hpp"

namespace paremsp {
namespace {

using engine::EngineConfig;
using engine::LabelingEngine;
using engine::ShardOptions;

/// Adversarial content mix: organic patches, a seam-crossing spiral, a
/// corner-contact checkerboard, plus noise — every seam type appears.
BinaryImage shard_image(Coord rows, Coord cols, std::uint64_t seed) {
  switch (seed % 4) {
    case 0: return gen::landcover_like(rows, cols, seed);
    case 1: return gen::spiral(rows, cols, 2, 3);
    case 2: return gen::checkerboard(rows, cols, 1);
    default: return gen::uniform_noise(rows, cols, 0.5, seed);
  }
}

void expect_bit_identical(const LabelingResult& got,
                          const LabelingResult& want,
                          const std::string& context) {
  EXPECT_EQ(got.num_components, want.num_components) << context;
  EXPECT_EQ(got.labels, want.labels) << context;
}

TEST(Sharded, TileGeometryByWorkerCountMatrixIsBitIdenticalToAremsp) {
  const Coord rows = 61, cols = 83;  // odd on purpose: ragged edge tiles
  const AremspLabeler reference;

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::pair<Coord, Coord>> geometries = {
      {1, cols},     // 1 x N row-strip tiles
      {rows, 1},     // N x 1 column-strip tiles
      {7, 9},        // odd x odd
      {1024, 1024},  // tile > image: single tile
      {1, 1},        // single-pixel tiles
      {16, 16},
  };
  for (const int workers : {1, 2, hw}) {
    LabelingEngine eng({.workers = workers});
    for (const auto& [tr, tc] : geometries) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const BinaryImage image = shard_image(rows, cols, seed);
        const LabelingResult want = reference.label(image);
        const LabelingResult got = eng.label_sharded(
            image, ShardOptions{.tile_rows = tr, .tile_cols = tc});
        expect_bit_identical(
            got, want,
            "tiles " + std::to_string(tr) + "x" + std::to_string(tc) +
                " workers " + std::to_string(workers) + " seed " +
                std::to_string(seed));
        const auto v = analysis::validate_labeling(image, got.labels,
                                                   got.num_components);
        EXPECT_TRUE(v.ok) << v.error;
      }
    }
    const auto stats = eng.stats();
    EXPECT_EQ(stats.shards_submitted, geometries.size() * 4);
    EXPECT_EQ(stats.shards_completed, geometries.size() * 4);
    EXPECT_GT(stats.shard_tasks_completed, 0u);
    // Shard jobs must not pollute the per-request latency stats.
    EXPECT_EQ(stats.jobs_submitted, 0u);
  }
}

TEST(Sharded, WithStatsMatchesPostPassOracleAcrossGeometryWorkerMatrix) {
  // The stats-carrying pipeline: scan jobs accumulate per-tile feature
  // cells, seam jobs unify them through the union-find, the resolve job
  // folds. Value-identity with the post-pass compute_stats oracle must
  // hold for every tile geometry (1-pixel tiles included) and worker
  // count, and the labeling itself must stay bit-identical to AREMSP.
  const Coord rows = 53, cols = 47;
  const AremspLabeler reference;
  const std::vector<std::pair<Coord, Coord>> geometries = {
      {1, 1}, {1, cols}, {rows, 1}, {7, 9}, {16, 16}, {1024, 1024},
  };
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  for (const int workers : {1, 2, hw}) {
    LabelingEngine eng({.workers = workers});
    for (const auto& [tr, tc] : geometries) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const BinaryImage image = shard_image(rows, cols, seed);
        const LabelingResult want = reference.label(image);
        const LabelingWithStats got = eng.label_sharded_with_stats(
            image, ShardOptions{.tile_rows = tr, .tile_cols = tc});
        const std::string context =
            "tiles " + std::to_string(tr) + "x" + std::to_string(tc) +
            " workers " + std::to_string(workers) + " seed " +
            std::to_string(seed);
        expect_bit_identical(got.labeling, want, context);
        const auto oracle = analysis::compute_stats(
            got.labeling.labels, got.labeling.num_components);
        testing::expect_stats_identical(got.stats, oracle, context);
      }
    }
  }
}

TEST(Sharded, WithStatsPipelinesConcurrentlyAndFailsCleanlyOnShutdown) {
  // Stats-carrying shards obey the same quiesce contract: futures from
  // runs interrupted by shutdown carry PreconditionError, completed ones
  // carry correct stats; nothing deadlocks or leaks a latch.
  const BinaryImage image = shard_image(48, 48, 1);
  const auto oracle = AremspLabeler().label_with_stats(image);
  auto eng = std::make_unique<LabelingEngine>(EngineConfig{.workers = 3});
  std::vector<std::future<LabelingWithStats>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(eng->submit_sharded_with_stats(
        image, ShardOptions{.tile_rows = 8, .tile_cols = 8}));
  }
  eng->shutdown();
  int completed = 0;
  for (auto& f : futures) {
    try {
      const LabelingWithStats got = f.get();
      EXPECT_EQ(got.labeling.labels, oracle.labeling.labels);
      testing::expect_stats_identical(got.stats, oracle.stats,
                                      "shutdown race survivor");
      ++completed;
    } catch (const PreconditionError&) {
      // Shut down mid-shard: acceptable, as long as the future resolved.
    }
  }
  // At least the runs that finished before shutdown must be correct; the
  // assertion above already guarantees any completed run was exact.
  (void)completed;
}

TEST(Sharded, WithStatsEmptyAndDegenerateImages) {
  LabelingEngine eng({.workers = 2});
  for (const BinaryImage& image :
       {BinaryImage(), BinaryImage(0, 9), BinaryImage(9, 0),
        BinaryImage(1, 1, 1), BinaryImage(3, 5, 1)}) {
    const LabelingWithStats got = eng.label_sharded_with_stats(
        image, ShardOptions{.tile_rows = 2, .tile_cols = 2});
    const auto want = AremspLabeler().label_with_stats(image);
    EXPECT_EQ(got.labeling.labels, want.labeling.labels);
    testing::expect_stats_identical(
        got.stats, want.stats,
        std::to_string(image.rows()) + "x" + std::to_string(image.cols()));
  }
}

TEST(Sharded, AllMergeBackendsMatch) {
  const BinaryImage image = gen::uniform_noise(64, 64, 0.55, 17);
  const LabelingResult want = AremspLabeler().label(image);
  LabelingEngine eng({.workers = 3});
  for (const auto backend : {MergeBackend::LockedRem, MergeBackend::CasRem,
                             MergeBackend::Sequential}) {
    const LabelingResult got = eng.label_sharded(
        image, ShardOptions{
                   .tile_rows = 8, .tile_cols = 8, .merge_backend = backend});
    expect_bit_identical(got, want, to_string(backend));
  }
}

TEST(Sharded, CasPolicyRoutesPerRequestAndStaysBitIdentical) {
  // ShardOptions carries the CasRem find x splice selection per request:
  // the same engine must honor a different combination on every submit
  // (no labeler reconstruction, no cross-request state) and each one
  // must stay bit-identical to sequential AREMSP — on the pixel and the
  // run-based shard pipeline alike.
  const BinaryImage image = gen::uniform_noise(64, 64, 0.55, 17);
  const LabelingResult want = AremspLabeler().label(image);
  LabelingEngine eng({.workers = 3});
  for (const ShardScan scan : {ShardScan::Pixel, ShardScan::Runs}) {
    for (const uf::CasFind find :
         {uf::CasFind::Naive, uf::CasFind::Split, uf::CasFind::Halve}) {
      for (const uf::CasSplice splice :
           {uf::CasSplice::Atomic, uf::CasSplice::Simple}) {
        const LabelingResult got =
            eng.label_sharded(image, ShardOptions{
                                         .tile_rows = 8,
                                         .tile_cols = 8,
                                         .scan = scan,
                                         .merge_backend = MergeBackend::CasRem,
                                         .cas_find = find,
                                         .cas_splice = splice});
        expect_bit_identical(
            got, want,
            std::string(to_string(scan)) + "/" +
                merge_backend_label(MergeBackend::CasRem, find, splice));
      }
    }
  }
}

TEST(Sharded, ManyShardsPipelineConcurrently) {
  // Several sharded images in flight at once: the phase latches must not
  // cross-talk between runs, and results must land on the right futures.
  LabelingEngine eng({.workers = 4});
  constexpr int kShards = 6;
  std::vector<BinaryImage> images;
  std::vector<std::future<LabelingResult>> futures;
  for (int i = 0; i < kShards; ++i) {
    images.push_back(shard_image(48 + 3 * i, 52 + 5 * i,
                                 static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < kShards; ++i) {
    futures.push_back(eng.submit_sharded(
        images[static_cast<std::size_t>(i)],
        ShardOptions{.tile_rows = 13, .tile_cols = 11}));
  }
  const AremspLabeler reference;
  for (int i = 0; i < kShards; ++i) {
    expect_bit_identical(futures[static_cast<std::size_t>(i)].get(),
                         reference.label(images[static_cast<std::size_t>(i)]),
                         "shard " + std::to_string(i));
  }
}

TEST(Sharded, MixesWithSmallImageTraffic) {
  // A sharded run and regular submit() traffic share the worker pool.
  LabelingEngine eng({.workers = 3});
  const BinaryImage big = gen::landcover_like(96, 96, 5);
  const BinaryImage small = gen::texture_like(24, 24, 6);

  auto shard_future =
      eng.submit_sharded(big, ShardOptions{.tile_rows = 16, .tile_cols = 16});
  std::vector<std::future<LabelingResult>> small_futures;
  for (int i = 0; i < 20; ++i) small_futures.push_back(eng.submit(small));

  const AremspLabeler reference;
  expect_bit_identical(shard_future.get(), reference.label(big), "shard");
  const LabelingResult small_want = reference.label(small);
  for (auto& f : small_futures) {
    expect_bit_identical(f.get(), small_want, "small job");
  }
}

TEST(Sharded, EmptyAndDegenerateImages) {
  LabelingEngine eng({.workers = 2});
  // Zero-size image: immediately-ready future, no jobs scheduled.
  const LabelingResult empty = eng.label_sharded(BinaryImage());
  EXPECT_EQ(empty.num_components, 0);
  EXPECT_EQ(empty.labels.size(), 0);

  const AremspLabeler reference;
  for (const auto [rows, cols] :
       {std::pair<Coord, Coord>{1, 64}, std::pair<Coord, Coord>{64, 1},
        std::pair<Coord, Coord>{1, 1}, std::pair<Coord, Coord>{3, 3}}) {
    const BinaryImage image = gen::uniform_noise(
        rows, cols, 0.6, static_cast<std::uint64_t>(rows * 131 + cols));
    expect_bit_identical(
        eng.label_sharded(image, ShardOptions{.tile_rows = 4, .tile_cols = 4}),
        reference.label(image),
        std::to_string(rows) + "x" + std::to_string(cols));
  }
  // All-foreground and all-background planes.
  expect_bit_identical(
      eng.label_sharded(BinaryImage(33, 29, 1),
                        ShardOptions{.tile_rows = 8, .tile_cols = 8}),
      reference.label(BinaryImage(33, 29, 1)), "all foreground");
  expect_bit_identical(
      eng.label_sharded(BinaryImage(33, 29, 0),
                        ShardOptions{.tile_rows = 8, .tile_cols = 8}),
      reference.label(BinaryImage(33, 29, 0)), "all background");
}

TEST(Sharded, SubmitAfterShutdownFailsTheFuture) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = gen::landcover_like(40, 40, 9);
  eng.shutdown();
  auto future = eng.submit_sharded(image);
  EXPECT_THROW((void)future.get(), PreconditionError);
}

TEST(Sharded, ShutdownMidShardEitherCompletesOrFailsCleanly) {
  // Race shutdown against in-flight shards many times: every future must
  // become ready, carrying either the exact AREMSP result (the accepted
  // jobs drained in time) or the shutdown PreconditionError — never a
  // hang, never a wrong labeling.
  const BinaryImage image = gen::landcover_like(80, 80, 11);
  const LabelingResult want = AremspLabeler().label(image);
  for (int round = 0; round < 8; ++round) {
    LabelingEngine eng({.workers = 2});
    std::vector<std::future<LabelingResult>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(eng.submit_sharded(
          image, ShardOptions{.tile_rows = 8, .tile_cols = 8}));
    }
    eng.shutdown();
    int completed = 0, failed = 0;
    for (auto& f : futures) {
      try {
        expect_bit_identical(f.get(), want, "round " + std::to_string(round));
        ++completed;
      } catch (const PreconditionError&) {
        ++failed;
      }
    }
    EXPECT_EQ(completed + failed, 4);
  }
}

TEST(Sharded, RejectsInvalidOptions) {
  LabelingEngine eng({.workers = 1});
  const BinaryImage image(8, 8, 1);
  EXPECT_THROW((void)eng.submit_sharded(image, ShardOptions{.tile_rows = 0}),
               PreconditionError);
  EXPECT_THROW((void)eng.submit_sharded(image, ShardOptions{.tile_cols = 0}),
               PreconditionError);
  EXPECT_THROW((void)eng.submit_sharded(image, ShardOptions{.lock_bits = 99}),
               PreconditionError);
}

TEST(Sharded, ReusesRecycledPlanes) {
  LabelingEngine eng({.workers = 2});
  const BinaryImage image = gen::landcover_like(64, 64, 21);
  LabelingResult first = eng.label_sharded(
      image, ShardOptions{.tile_rows = 16, .tile_cols = 16});
  const Label* storage = first.labels.pixels().data();
  eng.recycle(std::move(first.labels));
  // The next shard adopts the recycled plane instead of allocating: same
  // backing storage, bit-identical contents.
  LabelingResult second = eng.label_sharded(
      image, ShardOptions{.tile_rows = 16, .tile_cols = 16});
  EXPECT_EQ(second.labels.pixels().data(), storage);
  expect_bit_identical(second, AremspLabeler().label(image), "recycled");
}

}  // namespace
}  // namespace paremsp
